"""Named datasets resolved to shared, warm (instance, session) pairs.

A grading service fields many submissions against a small number of hidden
test databases.  Building those databases — and warming an
:class:`~repro.engine.session.EngineSession` over them — is the expensive,
shared artifact; each individual grade is cheap.  :class:`DatasetRegistry`
owns that artifact: it resolves dataset *specs* such as ``"university:200"``
or ``"tpch:0.01"`` to lazily built, cached :class:`DatasetHandle` objects,
so every worker grading against the same dataset shares one instance and one
(locked) engine session.

Spec syntax is ``name[:argument]`` where ``argument`` parameterizes the
builder (student count, scale factor, ...).  Custom datasets join the
registry either as builders (:meth:`DatasetRegistry.register_builder`) or as
pre-built instances (:meth:`DatasetRegistry.register_instance`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.catalog.instance import DatabaseInstance
from repro.engine.backends import BACKEND_NAMES
from repro.engine.session import EngineSession
from repro.errors import ReproError
from repro.lru import LRUCache

#: Builds an instance from the spec argument (text after ``:``) and a seed.
DatasetBuilder = Callable[[str, int], DatabaseInstance]


@dataclass(frozen=True)
class DatasetHandle:
    """A resolved dataset: the shared instance plus its warm engine session.

    Handles are cached and shared across submissions and worker threads —
    treat the instance as read-only (mutating it invalidates the session's
    caches for every concurrent user).  ``backend`` names the execution
    backend the session runs set-semantics evaluation on; handles for
    different backends share neither sessions nor caches, but instance-backed
    datasets do share the one underlying instance.
    """

    spec: str
    seed: int
    instance: DatabaseInstance
    session: EngineSession
    backend: str = "python"


def _builtin_builders() -> dict[str, DatasetBuilder]:
    from repro.datagen import (
        beers_instance,
        toy_beers_instance,
        toy_university_instance,
        tpch_instance,
        university_instance,
    )

    return {
        "toy-university": lambda arg, seed: toy_university_instance(),
        "university": lambda arg, seed: university_instance(int(arg or 50), seed=seed),
        "toy-beers": lambda arg, seed: toy_beers_instance(),
        "beers": lambda arg, seed: beers_instance(num_drinkers=int(arg or 40), seed=seed),
        "tpch": lambda arg, seed: tpch_instance(float(arg or 0.1), seed=seed),
    }


class DatasetRegistry:
    """Thread-safe resolver of dataset specs to cached (instance, session) pairs."""

    #: Default bound on cached handles (see the ``max_handles`` property).
    DEFAULT_MAX_HANDLES = 16

    def __init__(
        self, *, include_builtin: bool = True, max_handles: int | None = None
    ) -> None:
        self._builders: dict[str, DatasetBuilder] = (
            _builtin_builders() if include_builtin else {}
        )
        self._instance_backed: set[str] = set()
        self._handles: LRUCache = LRUCache(
            self.DEFAULT_MAX_HANDLES if max_handles is None else max_handles
        )
        self._build_locks: dict[tuple[str, int, str], threading.Lock] = {}
        self._generations: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def max_handles(self) -> int | None:
        """Bound on cached handles; the least recently resolved is evicted first.

        A grading deployment serves a handful of hidden datasets — the bound
        exists so submitter-controlled specs/seeds (e.g. from JSONL input)
        cannot pin unbounded instances in memory.
        """
        return self._handles.max_entries

    @max_handles.setter
    def max_handles(self, value: int | None) -> None:
        self._handles.max_entries = value

    # -- registration --------------------------------------------------------

    def register_builder(self, name: str, builder: DatasetBuilder) -> None:
        """Register (or replace) a named dataset builder.

        ``builder(argument, seed)`` receives the text after ``:`` in the spec
        (``""`` when absent) and the resolution seed.
        """
        self._register(name, builder, instance_backed=False)

    def register_instance(self, name: str, instance: DatabaseInstance) -> None:
        """Register a pre-built instance under ``name`` (shared, not copied).

        Spec arguments and seeds do not change a pre-built instance, so every
        ``name[:whatever]``/seed combination resolves to one shared handle —
        the warm session is never silently duplicated.
        """
        self._register(name, lambda arg, seed: instance, instance_backed=True)

    def _register(self, name: str, builder: DatasetBuilder, *, instance_backed: bool) -> None:
        with self._lock:
            self._builders[name] = builder
            if instance_backed:
                self._instance_backed.add(name)
            else:
                self._instance_backed.discard(name)
            self._generations[name] = self._generations.get(name, 0) + 1
            for key in [key for key in self._handles if _name(key[0]) == name]:
                del self._handles[key]
            self._build_locks = {
                key: lock for key, lock in self._build_locks.items() if _name(key[0]) != name
            }

    # -- resolution ----------------------------------------------------------

    def known_datasets(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._builders))

    def build(self, spec: str, *, seed: int = 0) -> DatabaseInstance:
        """Build a fresh instance for ``spec`` (uncached, caller-owned).

        For datasets registered via :meth:`register_instance` the shared
        instance itself is returned.
        """
        name, _, argument = spec.partition(":")
        with self._lock:
            builder = self._builders.get(name)
            if builder is None:
                raise self._unknown_dataset(spec)
        return builder(argument, seed)

    def resolve(self, spec: str, *, seed: int = 0, backend: str = "python") -> DatasetHandle:
        """The shared handle for ``spec``: built on first use, cached after.

        Builds run under a per-key lock *outside* the registry lock, so
        concurrent workers asking for the same dataset wait for one build,
        while requests for other (cached or building) datasets proceed —
        a slow ``tpch:1`` build never blocks ``toy-university`` lookups.
        ``backend`` selects the engine session's execution backend; handles
        are cached per (spec, seed, backend).
        """
        if backend not in BACKEND_NAMES:
            raise ReproError(
                f"unknown execution backend {backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        name, _, argument = spec.partition(":")
        with self._lock:
            builder = self._builders.get(name)
            if builder is None:
                raise self._unknown_dataset(spec)
            if name in self._instance_backed:
                key, argument, seed = (name, 0, backend), "", 0
            else:
                key = (spec, seed, backend)
            handle = self._handles.get(key)
            if handle is not None:
                return handle
            generation = self._generations.get(name, 0)
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                # Double-checked: don't let the re-check skew the hit ratio.
                handle = self._handles.get(key, record=False)
                if handle is not None:
                    return handle
            try:
                instance = builder(argument, seed)
            except BaseException:
                with self._lock:  # don't leak build locks for failing specs
                    self._build_locks.pop(key, None)
                raise
            handle = DatasetHandle(
                spec=key[0],
                seed=seed,
                instance=instance,
                session=EngineSession(instance, backend=backend),
                backend=backend,
            )
            with self._lock:
                if self._generations.get(name, 0) != generation:
                    # The builder was replaced while we were building — drop
                    # this stale handle and resolve against the new builder.
                    retry = True
                else:
                    retry = False
                    self._handles[key] = handle  # LRU-bounded: evicts oldest
                    self._build_locks.pop(key, None)
            if retry:
                return self.resolve(spec, seed=seed, backend=backend)
            return handle

    def _unknown_dataset(self, spec: str) -> ReproError:
        """The shared unknown-spec error (caller must hold ``self._lock``)."""
        known = ", ".join(sorted(self._builders))
        return ReproError(
            f"unknown dataset {spec!r}; expected one of {known} "
            "(parameterized specs look like university:200 or tpch:0.01)"
        )

    def cache_info(self) -> dict[str, int]:
        with self._lock:
            return {
                "registered_builders": len(self._builders),
                "resolved_handles": len(self._handles),
                "handle_hits": self._handles.hits,
                "handle_misses": self._handles.misses,
                "handle_evictions": self._handles.evictions,
            }

    def session_stats(self) -> dict[str, int]:
        """Engine-cache statistics summed over every resolved handle's session.

        This is what a long-lived server exports per worker on ``/metrics``:
        plan and result hit/miss/eviction counters aggregated across all warm
        sessions this registry owns.
        """
        with self._lock:
            sessions = [handle.session for handle in self._handles.values()]
        totals: dict[str, int] = {}
        for session in sessions:
            for name, value in session.cache_info().items():
                totals[name] = totals.get(name, 0) + value
        return totals


def _name(spec: str) -> str:
    return spec.partition(":")[0]


_default_registry: DatasetRegistry | None = None
_default_registry_lock = threading.Lock()


def default_registry() -> DatasetRegistry:
    """The process-wide registry used by the CLI and one-argument services."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            _default_registry = DatasetRegistry()
        return _default_registry
