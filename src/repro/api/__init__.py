"""The service-shaped public API: batched, concurrent, serialization-native.

This package is the primary entry point for consuming the RATest
reproduction as a *service* rather than a one-query-at-a-time library:

* :class:`~repro.api.registry.DatasetRegistry` resolves dataset specs
  (``"university:200"``, ``"tpch:0.01"``, custom instances) to cached
  instance + warm engine-session pairs;
* :class:`~repro.api.service.GradingService` grades single submissions
  (:meth:`~repro.api.service.GradingService.submit`) or whole batches
  concurrently (:meth:`~repro.api.service.GradingService.submit_batch`);
* :mod:`repro.api.serialization` defines the versioned JSON result schema
  every outcome serializes to (``SCHEMA_VERSION``).

The legacy :class:`~repro.ratest.system.RATest` facade and
:class:`~repro.ratest.grader.AutoGrader` are thin adapters over this layer.
"""

from repro.api.registry import DatasetHandle, DatasetRegistry, default_registry
from repro.api.serialization import (
    SCHEMA_VERSION,
    SerializationError,
    counterexample_result_from_dict,
    counterexample_result_to_dict,
    instance_from_dict,
    instance_to_dict,
    outcome_from_dict,
    outcome_to_dict,
    report_from_dict,
    report_to_dict,
    result_set_from_dict,
    result_set_to_dict,
)
from repro.api.service import (
    GradedSubmission,
    GradingService,
    SubmissionRequest,
    classify_error,
    explain_queries,
    grade_queries,
)

__all__ = [
    "SCHEMA_VERSION",
    "DatasetHandle",
    "DatasetRegistry",
    "GradedSubmission",
    "GradingService",
    "SerializationError",
    "SubmissionRequest",
    "classify_error",
    "counterexample_result_from_dict",
    "counterexample_result_to_dict",
    "default_registry",
    "explain_queries",
    "grade_queries",
    "instance_from_dict",
    "instance_to_dict",
    "outcome_from_dict",
    "outcome_to_dict",
    "report_from_dict",
    "report_to_dict",
    "result_set_from_dict",
    "result_set_to_dict",
]
