"""The versioned, JSON-serializable result schema of the grading service.

Everything the RATest system shows a user — the graded outcome, the
counterexample instance, both query results on it, timings and the algorithm
used — can be turned into plain JSON-compatible dictionaries and back.  That
is what lets grades cross a process boundary (the ``batch`` CLI, a web
front-end, a result store) instead of existing only as printable ASCII.

Schema stability rules:

* every top-level payload carries ``"schema_version"``;
* within one version, serialization is *canonical*: tid lists and map keys
  are sorted, result rows use
  :meth:`~repro.catalog.instance.ResultSet.sorted_rows` order, and
  counterexample subinstances store their tuples in tid order (see
  :meth:`~repro.catalog.instance.DatabaseInstance.subinstance`), so equal
  outcomes produce byte-identical JSON — the property the concurrency
  determinism test relies on (arbitrary hand-built instances serialize in
  insertion order);
* ``from_dict(to_dict(x))`` round-trips exactly: re-serializing the
  reconstructed object yields the same dictionary.

Version history:

========  ====================================================================
Version   Contents
========  ====================================================================
1         Initial schema: outcome / report / counterexample result /
          instance / result-set payloads as documented here.
========  ====================================================================
"""

from __future__ import annotations

import functools
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Mapping, TypeVar

from repro.catalog.constraints import (
    Constraint,
    ForeignKeyConstraint,
    FunctionalDependency,
    KeyConstraint,
    NotNullConstraint,
)
from repro.catalog.instance import DatabaseInstance, ResultSet, Values
from repro.catalog.schema import Attribute, DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.core.results import CounterexampleResult
from repro.errors import ReproError

#: Version of the serialized result schema produced by this module.
SCHEMA_VERSION = 1

JsonDict = dict[str, Any]


class SerializationError(ReproError):
    """A payload could not be serialized or deserialized.

    Subclasses :class:`ReproError`, so the grading layers classify it as
    ``error_kind="invalid_request"`` — a malformed or unknown-version payload
    from an untrusted client is a bad request, never an internal crash.
    """


def check_version(payload: Mapping[str, Any], what: str) -> None:
    """Reject payloads from an unknown schema version (or with none at all)."""
    if not isinstance(payload, Mapping):
        raise SerializationError(
            f"{what} payload must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SerializationError(
            f"cannot read {what} payload with schema_version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )


_FromDict = TypeVar("_FromDict", bound=Callable[..., Any])


def _reads(what: str) -> Callable[[_FromDict], _FromDict]:
    """Harden a ``*_from_dict`` function against malformed untrusted input.

    The server deserializes payloads straight off the wire; a missing field,
    a list where an object was expected, or a junk enum value must surface as
    a :class:`SerializationError` (→ ``invalid_request``), not as a raw
    ``KeyError``/``TypeError`` that would be classified as an internal error.
    """

    def decorate(func: _FromDict) -> _FromDict:
        @functools.wraps(func)
        def read(payload: Any, *args: Any, **kwargs: Any) -> Any:
            if not isinstance(payload, Mapping):
                raise SerializationError(
                    f"{what} payload must be a JSON object, got {type(payload).__name__}"
                )
            try:
                return func(payload, *args, **kwargs)
            except ReproError:
                raise
            except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
                detail = f"missing field {exc}" if isinstance(exc, KeyError) else str(exc)
                raise SerializationError(f"malformed {what} payload: {detail}") from exc

        return read  # type: ignore[return-value]

    return decorate


# ---------------------------------------------------------------------------
# Schemas and constraints
# ---------------------------------------------------------------------------

#: Constraint classes serializable by field introspection (all frozen
#: dataclasses whose fields are strings or tuples of strings).
_CONSTRAINT_KINDS: dict[str, type[Constraint]] = {
    cls.__name__: cls
    for cls in (KeyConstraint, NotNullConstraint, FunctionalDependency, ForeignKeyConstraint)
}


def attribute_to_dict(attribute: Attribute) -> JsonDict:
    return {
        "name": attribute.name,
        "dtype": attribute.dtype.value,
        "nullable": attribute.nullable,
    }


@_reads("attribute")
def attribute_from_dict(payload: Mapping[str, Any]) -> Attribute:
    return Attribute(payload["name"], DataType(payload["dtype"]), bool(payload.get("nullable")))


def relation_schema_to_dict(schema: RelationSchema) -> JsonDict:
    return {
        "name": schema.name,
        "attributes": [attribute_to_dict(a) for a in schema.attributes],
    }


@_reads("relation schema")
def relation_schema_from_dict(payload: Mapping[str, Any]) -> RelationSchema:
    return RelationSchema(
        payload["name"], tuple(attribute_from_dict(a) for a in payload["attributes"])
    )


def constraint_to_dict(constraint: Constraint) -> JsonDict:
    kind = type(constraint).__name__
    if kind not in _CONSTRAINT_KINDS:
        raise SerializationError(f"cannot serialize constraint of type {kind}")
    out: JsonDict = {"kind": kind}
    for field in dataclass_fields(constraint):  # type: ignore[arg-type]
        value = getattr(constraint, field.name)
        out[field.name] = list(value) if isinstance(value, tuple) else value
    return out


@_reads("constraint")
def constraint_from_dict(payload: Mapping[str, Any]) -> Constraint:
    kind = payload.get("kind")
    cls = _CONSTRAINT_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise SerializationError(f"unknown constraint kind {kind!r}")
    kwargs = {
        field.name: tuple(payload[field.name])
        if isinstance(payload[field.name], list)
        else payload[field.name]
        for field in dataclass_fields(cls)  # type: ignore[arg-type]
    }
    return cls(**kwargs)


def database_schema_to_dict(schema: DatabaseSchema) -> JsonDict:
    return {
        "relations": [relation_schema_to_dict(s) for s in schema.relations.values()],
        "constraints": [constraint_to_dict(c) for c in schema.constraints],
    }


@_reads("database schema")
def database_schema_from_dict(payload: Mapping[str, Any]) -> DatabaseSchema:
    return DatabaseSchema.of(
        (relation_schema_from_dict(s) for s in payload["relations"]),
        (constraint_from_dict(c) for c in payload.get("constraints", ())),
    )


# ---------------------------------------------------------------------------
# Instances and result sets
# ---------------------------------------------------------------------------


def instance_to_dict(instance: DatabaseInstance) -> JsonDict:
    """Serialize an instance: full schema plus ``[tid, values]`` tuple lists.

    Tuple identifiers are preserved so provenance in a reconstructed
    counterexample still names the original test-database tuples.
    """
    return {
        "schema": database_schema_to_dict(instance.schema),
        "tuples": {
            name: [[tid, list(values)] for tid, values in relation.tuples()]
            for name, relation in instance.relations.items()
        },
    }


@_reads("instance")
def instance_from_dict(payload: Mapping[str, Any]) -> DatabaseInstance:
    schema = database_schema_from_dict(payload["schema"])
    instance = DatabaseInstance(schema)
    for name, rows in payload["tuples"].items():
        relation = instance.relation(name)
        for tid, values in rows:
            relation.insert(values, tid=tid)
    return instance


def _row_from_list(row: Any) -> Values:
    return tuple(row)


def result_set_to_dict(result: ResultSet) -> JsonDict:
    return {
        "schema": relation_schema_to_dict(result.schema),
        "rows": [list(row) for row in result.sorted_rows()],
    }


@_reads("result set")
def result_set_from_dict(payload: Mapping[str, Any]) -> ResultSet:
    schema = relation_schema_from_dict(payload["schema"])
    return ResultSet(schema, frozenset(_row_from_list(row) for row in payload["rows"]))


# ---------------------------------------------------------------------------
# Counterexample results, reports, outcomes
# ---------------------------------------------------------------------------


def counterexample_result_to_dict(
    result: CounterexampleResult, *, include_timings: bool = True
) -> JsonDict:
    out: JsonDict = {
        "tids": sorted(result.tids),
        "counterexample": instance_to_dict(result.counterexample),
        "distinguishing_row": (
            None if result.distinguishing_row is None else list(result.distinguishing_row)
        ),
        "q1_rows": result_set_to_dict(result.q1_rows),
        "q2_rows": result_set_to_dict(result.q2_rows),
        "optimal": result.optimal,
        "algorithm": result.algorithm,
        "parameter_values": {
            name: result.parameter_values[name] for name in sorted(result.parameter_values)
        },
        "solver_calls": result.solver_calls,
        "verified": result.verified,
    }
    if include_timings:
        out["timings"] = {name: result.timings[name] for name in sorted(result.timings)}
    return out


@_reads("counterexample result")
def counterexample_result_from_dict(payload: Mapping[str, Any]) -> CounterexampleResult:
    row = payload.get("distinguishing_row")
    return CounterexampleResult(
        tids=frozenset(payload["tids"]),
        counterexample=instance_from_dict(payload["counterexample"]),
        distinguishing_row=None if row is None else _row_from_list(row),
        q1_rows=result_set_from_dict(payload["q1_rows"]),
        q2_rows=result_set_from_dict(payload["q2_rows"]),
        optimal=payload["optimal"],
        algorithm=payload["algorithm"],
        timings=dict(payload.get("timings", {})),
        parameter_values=dict(payload.get("parameter_values", {})),
        solver_calls=payload.get("solver_calls", 0),
        verified=payload.get("verified", False),
    )


def report_to_dict(report: "RATestReport", *, include_timings: bool = True) -> JsonDict:
    return {
        "correct_query_text": report.correct_query_text,
        "test_query_text": report.test_query_text,
        "result": counterexample_result_to_dict(report.result, include_timings=include_timings),
    }


@_reads("report")
def report_from_dict(payload: Mapping[str, Any]) -> "RATestReport":
    from repro.ratest.report import RATestReport

    return RATestReport(
        correct_query_text=payload["correct_query_text"],
        test_query_text=payload["test_query_text"],
        result=counterexample_result_from_dict(payload["result"]),
    )


def outcome_to_dict(outcome: "SubmissionOutcome", *, include_timings: bool = True) -> JsonDict:
    return {
        "schema_version": SCHEMA_VERSION,
        "correct": outcome.correct,
        "report": (
            None
            if outcome.report is None
            else report_to_dict(outcome.report, include_timings=include_timings)
        ),
        "error": outcome.error,
        "error_kind": outcome.error_kind,
    }


@_reads("submission outcome")
def outcome_from_dict(payload: Mapping[str, Any]) -> "SubmissionOutcome":
    from repro.ratest.system import SubmissionOutcome

    check_version(payload, "submission outcome")
    report = payload.get("report")
    return SubmissionOutcome(
        correct=payload["correct"],
        report=None if report is None else report_from_dict(report),
        error=payload.get("error"),
        error_kind=payload.get("error_kind"),
    )
