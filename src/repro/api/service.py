"""The batch-first grading service: RATest as a many-submission API.

The paper's system is a web auto-grader: many students submit queries against
a few shared hidden instances.  :class:`GradingService` is that shape as a
library API — :meth:`~GradingService.submit` grades one
``(reference, submission)`` pair, :meth:`~GradingService.submit_batch` grades
many concurrently over a thread pool, and every result is a
JSON-serializable :class:`GradedSubmission` (see
:mod:`repro.api.serialization`), so grades can cross a process boundary.

All submissions against one dataset share a single warm
:class:`~repro.engine.session.EngineSession` (resolved through a
:class:`~repro.api.registry.DatasetRegistry`): the reference query is planned
and evaluated once, not once per submission, and the session's internal lock
makes that sharing safe under concurrency.

The module also hosts the single-submission workflow functions
(:func:`grade_queries`, :func:`explain_queries`) that the legacy
:class:`~repro.ratest.system.RATest` facade now delegates to.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence

from repro.api.registry import DatasetHandle, DatasetRegistry, default_registry
from repro.api.serialization import (
    SCHEMA_VERSION,
    check_version,
    outcome_from_dict,
    outcome_to_dict,
)
from repro.catalog.instance import DatabaseInstance
from repro.core.finder import find_smallest_counterexample
from repro.engine.session import EngineSession
from repro.obs.trace import span as obs_span
from repro.errors import (
    CounterexampleError,
    NotApplicableError,
    ParseError,
    QueryEvaluationError,
    ReproError,
    SchemaError,
    SolverError,
)
from repro.parser.ra_parser import parse_query
from repro.ra.ast import RAExpression
from repro.ratest.report import RATestReport
from repro.ratest.system import SubmissionOutcome

QueryLike = RAExpression | str


# ---------------------------------------------------------------------------
# Error classification (the outcome's machine-readable ``error_kind``)
# ---------------------------------------------------------------------------


def classify_error(exc: BaseException) -> str:
    """Map an exception to a stable ``error_kind`` label.

    ``parse_error`` and ``schema_error`` are the submitter's fault;
    ``evaluation_error`` and ``no_counterexample`` describe what the engine
    found; ``not_applicable``/``solver_error``/``invalid_request`` are
    operational; ``internal_error`` means a genuine bug.
    """
    if isinstance(exc, ParseError):
        return "parse_error"
    if isinstance(exc, SchemaError):
        return "schema_error"
    if isinstance(exc, QueryEvaluationError):
        return "evaluation_error"
    if isinstance(exc, CounterexampleError):
        return "no_counterexample"
    if isinstance(exc, NotApplicableError):
        return "not_applicable"
    if isinstance(exc, SolverError):
        return "solver_error"
    if isinstance(exc, ReproError):
        return "invalid_request"
    return "internal_error"


def _error_outcome(exc: BaseException, *, reference: bool = False) -> SubmissionOutcome:
    kind = classify_error(exc)
    message = str(exc)
    if reference:
        # A broken *reference* query is the grader's fault, not the
        # submitter's: whatever went wrong, the request was invalid, and
        # callers (e.g. the batch CLI) treat that as an operational failure.
        message = f"reference query: {message}"
        if kind not in ("internal_error",):
            kind = "invalid_request"
    if kind == "internal_error":
        message = f"internal error: {message}"
    return SubmissionOutcome(correct=False, error=message, error_kind=kind)


# ---------------------------------------------------------------------------
# Single-submission workflows over a shared session
# ---------------------------------------------------------------------------


def _parse(query: QueryLike) -> RAExpression:
    if isinstance(query, RAExpression):
        return query
    return parse_query(query)


def display_text(query: QueryLike) -> str:
    """The text shown for a query in reports: the user's DSL text, verbatim."""
    return query if isinstance(query, str) else str(query)


def explain_queries(
    session: EngineSession,
    correct_query: QueryLike,
    test_query: QueryLike,
    *,
    algorithm: str = "auto",
    params: Mapping[str, Any] | None = None,
    correct_text: str | None = None,
    test_text: str | None = None,
    **options: Any,
) -> RATestReport:
    """Smallest-counterexample report for two differing queries.

    Raises :class:`CounterexampleError` when the queries agree on the
    session's instance; :func:`grade_queries` wraps the full workflow.
    """
    expr1, expr2 = _parse(correct_query), _parse(test_query)
    result = find_smallest_counterexample(
        expr1,
        expr2,
        session.instance,
        algorithm=algorithm,
        params=params,
        session=session,
        **options,
    )
    return RATestReport(
        correct_query_text=correct_text if correct_text is not None else display_text(correct_query),
        test_query_text=test_text if test_text is not None else display_text(test_query),
        result=result,
    )


def grade_queries(
    session: EngineSession,
    correct_query: QueryLike,
    test_query: QueryLike,
    *,
    algorithm: str = "auto",
    params: Mapping[str, Any] | None = None,
    explain: bool = True,
    **options: Any,
) -> SubmissionOutcome:
    """The full submission workflow: agree → correct, differ → explanation.

    Never raises: parse, schema, evaluation and internal failures all become
    outcomes with a machine-readable ``error_kind``.  With ``explain=False``
    a differing submission is reported wrong without computing a
    counterexample (the auto-grader's screening mode).
    """
    try:
        with obs_span("grade.parse", query="reference"):
            expr1 = _parse(correct_query)
    except Exception as exc:
        return _error_outcome(exc, reference=True)
    try:
        with obs_span("grade.parse", query="submission"):
            expr2 = _parse(test_query)
    except Exception as exc:
        return _error_outcome(exc)
    try:
        with obs_span("grade.reference_eval"):
            reference = session.evaluate(expr1, params)
    except Exception as exc:
        return _error_outcome(exc, reference=True)
    try:
        with obs_span("grade.submission_eval"):
            submitted = session.evaluate(expr2, params)
    except Exception as exc:
        return _error_outcome(exc)
    if submitted.same_rows(reference):
        return SubmissionOutcome(correct=True)
    if not explain:
        return SubmissionOutcome(correct=False)
    try:
        # The counterexample span: the SAT solver's per-solve counters land
        # here ambiently (see repro.solver.sat.SATSolver.solve).
        with obs_span("grade.explain", algorithm=algorithm):
            report = explain_queries(
                session,
                expr1,
                expr2,
                algorithm=algorithm,
                params=params,
                correct_text=display_text(correct_query),
                test_text=display_text(test_query),
                **options,
            )
    except Exception as exc:
        return _error_outcome(exc)
    return SubmissionOutcome(correct=False, report=report)


# ---------------------------------------------------------------------------
# Requests and graded results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubmissionRequest:
    """One unit of grading work: a (reference, submission) pair plus routing.

    ``dataset`` is a registry spec (``None`` → the service default);
    ``explain=False`` skips the counterexample on mismatch (screening mode);
    ``options`` are forwarded to the counterexample algorithm.
    """

    correct_query: QueryLike
    test_query: QueryLike
    dataset: str | None = None
    seed: int | None = None
    id: str | None = None
    algorithm: str = "auto"
    params: Mapping[str, Any] | None = None
    explain: bool = True
    options: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The JSONL submission format consumed by ``repro.cli batch``."""
        out: dict[str, Any] = {
            "correct_query": display_text(self.correct_query),
            "test_query": display_text(self.test_query),
        }
        if self.dataset is not None:
            out["dataset"] = self.dataset
        if self.seed is not None:
            out["seed"] = self.seed
        if self.id is not None:
            out["id"] = self.id
        if self.algorithm != "auto":
            out["algorithm"] = self.algorithm
        if self.params:
            out["params"] = dict(self.params)
        if not self.explain:
            out["explain"] = False
        if self.options:
            out["options"] = dict(self.options)
        return out

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SubmissionRequest":
        """Read a request dict; ``correct``/``test`` are accepted as aliases.

        Payloads come straight off the wire (the batch CLI, the HTTP server),
        so every field is type-checked here and violations raise
        :class:`~repro.errors.ReproError` (→ ``error_kind="invalid_request"``)
        rather than surfacing later as confusing internal errors.
        """
        if not isinstance(payload, Mapping):
            raise ReproError(
                f"submission request must be a JSON object, got {type(payload).__name__}"
            )
        correct = payload.get("correct_query", payload.get("correct"))
        test = payload.get("test_query", payload.get("test"))
        if correct is None or test is None:
            raise ReproError(
                "submission request needs 'correct_query' and 'test_query' "
                "(aliases: 'correct', 'test')"
            )

        def expect(name: str, value: Any, kinds: tuple[type, ...], what: str) -> Any:
            if value is not None and not isinstance(value, kinds):
                raise ReproError(
                    f"submission request field {name!r} must be {what}, "
                    f"got {type(value).__name__}"
                )
            return value

        expect("correct_query", correct, (str, RAExpression), "query text")
        expect("test_query", test, (str, RAExpression), "query text")
        seed = expect("seed", payload.get("seed"), (int,), "an integer")
        if isinstance(seed, bool):
            raise ReproError("submission request field 'seed' must be an integer")
        return SubmissionRequest(
            correct_query=correct,
            test_query=test,
            dataset=expect("dataset", payload.get("dataset"), (str,), "a dataset spec string"),
            seed=seed,
            id=expect("id", payload.get("id"), (str,), "a string"),
            algorithm=expect(
                "algorithm", payload.get("algorithm", "auto"), (str,), "a string"
            ),
            params=expect("params", payload.get("params"), (Mapping,), "an object"),
            explain=bool(payload.get("explain", True)),
            options=expect("options", payload.get("options", {}), (Mapping,), "an object"),
        )


@dataclass
class GradedSubmission:
    """A graded request: the outcome plus the routing that produced it."""

    outcome: SubmissionOutcome
    id: str | None = None
    dataset: str | None = None
    seed: int = 0
    wall_time: float = 0.0

    @property
    def correct(self) -> bool:
        return self.outcome.correct

    def to_dict(self, *, include_timings: bool = True) -> dict[str, Any]:
        """JSON-compatible payload (the JSONL grade format of ``cli batch``).

        ``include_timings=False`` omits wall-clock fields, leaving a fully
        deterministic payload — used to assert serial and pooled grading
        produce identical results.
        """
        out: dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "id": self.id,
            "dataset": self.dataset,
            "seed": self.seed,
            "correct": self.outcome.correct,
            "outcome": outcome_to_dict(self.outcome, include_timings=include_timings),
        }
        if include_timings:
            out["wall_time"] = self.wall_time
        return out

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "GradedSubmission":
        check_version(payload, "graded submission")
        return GradedSubmission(
            outcome=outcome_from_dict(payload["outcome"]),
            id=payload.get("id"),
            dataset=payload.get("dataset"),
            seed=payload.get("seed", 0),
            wall_time=payload.get("wall_time", 0.0),
        )


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class GradingService:
    """Grade many submissions against shared, named, warm datasets.

    One service holds one :class:`DatasetRegistry`; every submission names a
    dataset spec (or uses the service default) and is graded on that
    dataset's shared engine session.  ``submit_batch`` fans work out over a
    thread pool; the session lock keeps results identical to serial grading.

    ``backend`` selects the execution backend every resolved session
    evaluates set-semantics queries on — ``"python"`` (the in-process
    operators) or ``"sqlite"`` (plans compiled to SQL on a cached
    ``:memory:`` database).  Grades are backend-independent: plans SQLite
    cannot express, and all provenance work, transparently run in-process.
    """

    def __init__(
        self,
        registry: DatasetRegistry | None = None,
        *,
        default_dataset: str = "toy-university",
        default_seed: int = 0,
        backend: str = "python",
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.default_dataset = default_dataset
        self.default_seed = default_seed
        self.backend = backend

    @classmethod
    def for_instance(
        cls, instance: DatabaseInstance, *, name: str = "custom", backend: str = "python"
    ) -> "GradingService":
        """A service bound to one pre-built (e.g. hidden course) instance."""
        registry = DatasetRegistry()
        registry.register_instance(name, instance)
        return cls(registry, default_dataset=name, backend=backend)

    # -- dataset access ------------------------------------------------------

    def handle_for(self, dataset: str | None = None, seed: int | None = None) -> DatasetHandle:
        return self.registry.resolve(
            dataset if dataset is not None else self.default_dataset,
            seed=self.default_seed if seed is None else seed,
            backend=self.backend,
        )

    def session_for(self, dataset: str | None = None, seed: int | None = None) -> EngineSession:
        """The shared warm session for a dataset (mainly for tests/benchmarks)."""
        return self.handle_for(dataset, seed).session

    # -- mutation ------------------------------------------------------------

    def mutate(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Apply an edit stream to a dataset's shared instance, in order.

        ``payload`` is ``{"dataset": spec?, "seed": int?, "operations": [...]}``
        where each operation is one of::

            {"op": "insert", "relation": name, "values": [...], "tid": str?}
            {"op": "delete", "tid": tid}
            {"op": "update", "tid": tid, "values": [...]}

        Mutations go through :class:`~repro.catalog.instance.DatabaseInstance`'s
        logged mutation API, so the dataset's warm engine session absorbs them
        differentially (``apply_delta``) instead of dropping its caches.
        Returns the applied-operation count, the instance's new data version,
        and the session's delta-maintenance counter increments.  Operations
        are validated and applied one by one; the first bad operation raises
        with nothing further applied (earlier operations stay applied — the
        caller sees ``data_version`` and can reconcile).
        """
        operations = payload.get("operations")
        if not isinstance(operations, list):
            raise ReproError('mutate payload must carry "operations": [...]')
        dataset = payload.get("dataset")
        seed = payload.get("seed")
        handle = self.handle_for(
            dataset if isinstance(dataset, str) else None,
            seed if isinstance(seed, int) else None,
        )
        instance = handle.instance
        applied = 0
        for index, operation in enumerate(operations):
            if not isinstance(operation, Mapping):
                raise ReproError(f"operation #{index} is not an object")
            op = operation.get("op")
            try:
                if op == "insert":
                    instance.insert_row(
                        str(operation["relation"]),
                        tuple(operation["values"]),
                        tid=operation.get("tid"),
                    )
                elif op == "delete":
                    instance.delete(str(operation["tid"]))
                elif op == "update":
                    instance.update(str(operation["tid"]), tuple(operation["values"]))
                else:
                    raise ReproError(
                        f'operation #{index}: unknown op {op!r} '
                        '(expected "insert", "delete" or "update")'
                    )
            except ReproError:
                raise
            except KeyError as exc:
                raise ReproError(f"operation #{index}: {exc.args[0]}") from None
            except Exception as exc:
                raise ReproError(f"operation #{index}: {exc}") from None
            applied += 1
        counters = handle.session.apply_delta()
        return {
            "dataset": handle.spec,
            "applied": applied,
            "data_version": instance.data_version,
            "delta": counters,
        }

    # -- grading -------------------------------------------------------------

    def check(
        self,
        correct_query: QueryLike,
        test_query: QueryLike,
        *,
        dataset: str | None = None,
        seed: int | None = None,
        algorithm: str = "auto",
        params: Mapping[str, Any] | None = None,
        explain: bool = True,
        **options: Any,
    ) -> SubmissionOutcome:
        """Grade one pair and return the bare outcome (no routing envelope)."""
        return self.submit(
            SubmissionRequest(
                correct_query=correct_query,
                test_query=test_query,
                dataset=dataset,
                seed=seed,
                algorithm=algorithm,
                params=params,
                explain=explain,
                options=options,
            )
        ).outcome

    def submit(self, request: SubmissionRequest | Mapping[str, Any]) -> GradedSubmission:
        """Grade one request; never raises for per-submission failures."""
        request = self._coerce(request)
        spec = request.dataset if request.dataset is not None else self.default_dataset
        seed = self.default_seed if request.seed is None else request.seed
        start = perf_counter()
        try:
            handle = self.handle_for(spec, seed)
        except Exception as exc:
            outcome = _error_outcome(exc)
        else:
            # Report the handle's *effective* routing: instance-backed
            # datasets ignore spec arguments and seeds, and the recorded
            # provenance must match what actually produced the grade.
            spec, seed = handle.spec, handle.seed
            outcome = grade_queries(
                handle.session,
                request.correct_query,
                request.test_query,
                algorithm=request.algorithm,
                params=request.params,
                explain=request.explain,
                **dict(request.options),
            )
        return GradedSubmission(
            outcome=outcome,
            id=request.id,
            dataset=spec,
            seed=seed,
            wall_time=perf_counter() - start,
        )

    def submit_batch(
        self,
        requests: Iterable[SubmissionRequest | Mapping[str, Any]],
        *,
        workers: int = 1,
        deduplicate: bool = True,
    ) -> list[GradedSubmission]:
        """Grade many requests, preserving input order in the result list.

        ``workers > 1`` grades over a thread pool sharing the per-dataset
        warm sessions; outcomes are identical to serial grading (timings
        aside) because the sessions serialize engine work internally.

        ``deduplicate`` (default on) grades each distinct
        (dataset, seed, pair, algorithm, params, options) group once and fans
        the outcome out to every matching request — in a class, many students
        submit the same classic mistake, and one counterexample explains all
        of them.  Outcomes are unaffected; only redundant work is skipped.
        Members of one group *share* the outcome object (treat it as
        read-only), and only the graded representative carries the group's
        ``wall_time`` — duplicates report ``0.0``, so summing per-grade times
        yields the batch's true cost.
        """
        coerced: Sequence[SubmissionRequest] = [self._coerce(r) for r in requests]
        groups: dict[Any, list[int]] = {}
        for index, request in enumerate(coerced):
            key = self._grading_key(request) if deduplicate else index
            groups.setdefault(key, []).append(index)
        members = list(groups.values())
        representatives = [coerced[group[0]] for group in members]
        if workers <= 1 or len(representatives) <= 1:
            graded = [self.submit(request) for request in representatives]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                graded = list(pool.map(self.submit, representatives))
        results: list[GradedSubmission | None] = [None] * len(coerced)
        for group, result in zip(members, graded):
            for index in group:
                request = coerced[index]
                results[index] = GradedSubmission(
                    outcome=result.outcome,
                    id=request.id,
                    dataset=result.dataset,
                    seed=result.seed,
                    wall_time=result.wall_time if index == group[0] else 0.0,
                )
        return results  # type: ignore[return-value]

    def _grading_key(self, request: SubmissionRequest) -> Any:
        """Hashable identity of the grading work a request demands.

        Unhashable params/options (or exotic query objects) opt out of
        deduplication by returning a unique key.
        """
        key = (
            request.dataset if request.dataset is not None else self.default_dataset,
            self.default_seed if request.seed is None else request.seed,
            request.correct_query,
            request.test_query,
            request.algorithm,
            None if request.params is None else tuple(sorted(request.params.items())),
            request.explain,
            tuple(sorted(request.options.items())) if request.options else (),
        )
        try:
            hash(key)
        except TypeError:
            return object()
        return key

    @staticmethod
    def _coerce(request: SubmissionRequest | Mapping[str, Any]) -> SubmissionRequest:
        if isinstance(request, SubmissionRequest):
            return request
        return SubmissionRequest.from_dict(request)
