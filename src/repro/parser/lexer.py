"""Tokenizer for the relational algebra text DSL.

The DSL follows the radb-style syntax used by the course's RA interpreter::

    \\project_{s.name, s.major} (
        \\rename_{prefix: s} Student
        \\join_{s.name = r.name and r.dept = 'CS'}
        \\rename_{prefix: r} Registration
    )

Token kinds:

* ``KEYWORD`` — backslash keywords (``\\select``, ``\\project``, ``\\join``,
  ``\\cross``, ``\\union``, ``\\diff``, ``\\intersect``, ``\\rename``,
  ``\\aggr``);
* ``BLOCK`` — a ``_{...}`` argument block (braces are matched, nesting allowed);
* ``IDENT`` — identifiers, optionally dotted (``s.name``) or ``@parameters``;
* ``NUMBER`` / ``STRING`` — literals;
* ``LPAREN`` / ``RPAREN``, ``COMMA``, ``OP`` (comparison/arrow operators).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "select",
    "project",
    "join",
    "cross",
    "union",
    "diff",
    "intersect",
    "rename",
    "aggr",
}

_OPERATORS = ("<=", ">=", "<>", "!=", "->", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize DSL text, raising :class:`ParseError` on malformed input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "\\":
            j = i + 1
            while j < n and text[j].isalnum():
                j += 1
            word = text[i + 1 : j]
            if word not in KEYWORDS:
                raise ParseError(f"unknown keyword \\{word}", position=i)
            tokens.append(Token("KEYWORD", word, i))
            i = j
            # An optional argument block immediately after the keyword: _{...}
            if i < n and text[i] == "_":
                if i + 1 >= n or text[i + 1] != "{":
                    raise ParseError("expected '{' after '_'", position=i)
                block, i = _read_block(text, i + 1)
                tokens.append(Token("BLOCK", block, i))
            continue
        if ch == "(":
            tokens.append(Token("LPAREN", ch, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token("RPAREN", ch, i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token("COMMA", ch, i))
            i += 1
            continue
        if ch == ";":
            tokens.append(Token("SEMICOLON", ch, i))
            i += 1
            continue
        if ch == ":":
            tokens.append(Token("COLON", ch, i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token("STAR", ch, i))
            i += 1
            continue
        matched_operator = _match_operator(text, i)
        if matched_operator is not None:
            tokens.append(Token("OP", matched_operator, i))
            i += len(matched_operator)
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", position=i)
            tokens.append(Token("STRING", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot followed by a non-digit belongs to an identifier, not a number.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_" or ch == "@":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            tokens.append(Token("IDENT", text[i:j], i))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i)
    return tokens


def _match_operator(text: str, position: int) -> str | None:
    for operator in _OPERATORS:
        if text.startswith(operator, position):
            return operator
    return None


def _read_block(text: str, open_brace: int) -> tuple[str, int]:
    """Read a ``{...}`` block starting at ``open_brace``; returns (content, next index)."""
    depth = 0
    i = open_brace
    n = len(text)
    while i < n:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace + 1 : i], i + 1
        elif text[i] == "'":
            i += 1
            while i < n and text[i] != "'":
                i += 1
        i += 1
    raise ParseError("unterminated '{' block", position=open_brace)
