"""Render relational algebra expressions as SQL-style common table expressions.

RATest's original implementation translated RA queries into SQL CTEs and ran
them on SQL Server.  Our engine evaluates RA trees directly, but reports and
debugging still benefit from a readable SQL rendering, so this module produces
a ``WITH step_1 AS (...), step_2 AS (...) SELECT * FROM step_n`` text for any
expression.  The output is documentation-quality SQL: it mirrors the paper's
rewriting rules (one CTE per operator) without claiming to run on a specific
DBMS dialect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import DatabaseSchema
from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Scalar,
    TruePredicate,
)


@dataclass
class _CTEBuilder:
    db: DatabaseSchema
    steps: list[tuple[str, str]] = field(default_factory=list)
    counter: int = 0

    def add(self, sql: str) -> str:
        self.counter += 1
        name = f"step_{self.counter}"
        self.steps.append((name, sql))
        return name


def to_sql(expression: RAExpression, db: DatabaseSchema) -> str:
    """SQL-style rendering of an RA expression as a chain of CTEs."""
    builder = _CTEBuilder(db)
    final = _emit(expression, builder)
    if not builder.steps:
        return f"SELECT * FROM {final}"
    ctes = ",\n".join(f"{name} AS (\n  {sql}\n)" for name, sql in builder.steps)
    return f"WITH {ctes}\nSELECT * FROM {final}"


def predicate_to_sql(predicate: Predicate) -> str:
    """SQL-style rendering of a predicate."""
    return _predicate(predicate)


def _emit(node: RAExpression, builder: _CTEBuilder) -> str:
    if isinstance(node, RelationRef):
        return node.name
    if isinstance(node, Selection):
        child = _emit(node.child, builder)
        return builder.add(f"SELECT * FROM {child} WHERE {_predicate(node.predicate)}")
    if isinstance(node, Projection):
        child = _emit(node.child, builder)
        columns = ", ".join(
            column if column == alias else f"{_quote(column)} AS {_quote(alias)}"
            for column, alias in zip(node.columns, node.output_names())
        )
        return builder.add(f"SELECT DISTINCT {columns} FROM {child}")
    if isinstance(node, Rename):
        child = _emit(node.child, builder)
        schema = node.child.output_schema(builder.db)
        output = node.output_schema(builder.db)
        columns = ", ".join(
            f"{_quote(old.name)} AS {_quote(new.name)}"
            for old, new in zip(schema.attributes, output.attributes)
        )
        return builder.add(f"SELECT {columns} FROM {child}")
    if isinstance(node, Join):
        left = _emit(node.left, builder)
        right = _emit(node.right, builder)
        condition = _predicate(node.effective_predicate())
        return builder.add(f"SELECT * FROM {left} JOIN {right} ON {condition}")
    if isinstance(node, NaturalJoin):
        left = _emit(node.left, builder)
        right = _emit(node.right, builder)
        return builder.add(f"SELECT * FROM {left} NATURAL JOIN {right}")
    if isinstance(node, Union):
        left = _emit(node.left, builder)
        right = _emit(node.right, builder)
        return builder.add(f"SELECT * FROM {left} UNION SELECT * FROM {right}")
    if isinstance(node, Difference):
        left = _emit(node.left, builder)
        right = _emit(node.right, builder)
        return builder.add(f"SELECT * FROM {left} EXCEPT SELECT * FROM {right}")
    if isinstance(node, Intersection):
        left = _emit(node.left, builder)
        right = _emit(node.right, builder)
        return builder.add(f"SELECT * FROM {left} INTERSECT SELECT * FROM {right}")
    if isinstance(node, GroupBy):
        child = _emit(node.child, builder)
        group = ", ".join(_quote(name) for name in node.group_by)
        aggregates = ", ".join(
            f"{spec.func.value.upper()}({_quote(spec.attribute) if spec.attribute else '*'}) "
            f"AS {_quote(spec.alias)}"
            for spec in node.aggregates
        )
        select_list = ", ".join(part for part in (group, aggregates) if part)
        sql = f"SELECT {select_list} FROM {child}"
        if node.group_by:
            sql += f" GROUP BY {group}"
        return builder.add(sql)
    raise TypeError(f"cannot render node of type {type(node).__name__}")  # pragma: no cover


def _predicate(predicate: Predicate) -> str:
    if isinstance(predicate, TruePredicate):
        return "TRUE"
    if isinstance(predicate, Comparison):
        op = "<>" if predicate.op == "!=" else predicate.op
        return f"{_scalar(predicate.left)} {op} {_scalar(predicate.right)}"
    if isinstance(predicate, And):
        return " AND ".join(f"({_predicate(p)})" for p in predicate.operands)
    if isinstance(predicate, Or):
        return " OR ".join(f"({_predicate(p)})" for p in predicate.operands)
    if isinstance(predicate, Not):
        return f"NOT ({_predicate(predicate.operand)})"
    raise TypeError(f"cannot render predicate of type {type(predicate).__name__}")


def _scalar(scalar: Scalar) -> str:
    if isinstance(scalar, ColumnRef):
        return _quote(scalar.name)
    if isinstance(scalar, Literal):
        if isinstance(scalar.value, str):
            return "'" + scalar.value.replace("'", "''") + "'"
        return str(scalar.value)
    if isinstance(scalar, Param):
        return f"@{scalar.name}"
    if isinstance(scalar, Arithmetic):
        return f"({_scalar(scalar.left)} {scalar.op} {_scalar(scalar.right)})"
    raise TypeError(f"cannot render scalar of type {type(scalar).__name__}")


def _quote(name: str | None) -> str:
    if name is None:
        return "*"
    if "." in name:
        return f'"{name}"'
    return name
