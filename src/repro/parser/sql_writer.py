"""Compile relational algebra expressions to executable SQLite SQL.

RATest's original implementation translated RA queries into SQL CTEs and ran
them on SQL Server.  This module is that translation for SQLite: ``to_sql``
produces a ``WITH step_1 AS (...), ... SELECT ... FROM step_n`` statement —
one CTE per operator, mirroring the paper's rewriting rules — that executes
verbatim on a database loaded via
:func:`repro.engine.backends.sqlite.connect_instance` and returns exactly
the rows the engine computes.

The scalar/predicate rendering and type rules live in :mod:`repro.sqltext`
— one implementation shared with the plan-level compiler in
:mod:`repro.engine.backends.sqlite`, so the two SQL paths cannot drift.
Dialect-correctness notes:

* set semantics: base-relation scans and projections are ``SELECT
  DISTINCT``; ``UNION``/``EXCEPT``/``INTERSECT`` carry explicit,
  schema-ordered column lists in both operands, so positional alignment
  never depends on a ``*`` expansion;
* identifiers are quoted whenever they are not plain unreserved words —
  prefix-renamed attributes like ``s.name`` become ``"s.name"``;
* ``NULL`` literals render as ``NULL`` (never as an empty string or the
  text ``None``), and comparisons wrap in ``COALESCE(..., 0)`` so ``NOT``
  over a NULL comparison behaves like the engine's two-valued logic;
* equi-join conjuncts that the engine hoists into hash-join keys compare
  with the null-safe ``IS`` operator, matching dictionary-key equality;
* division renders as ``repro_div(a, b)`` (registered by
  :func:`~repro.engine.backends.sqlite.prepare_connection`) to get Python's
  true division and division-by-zero error;
* ``@name`` query parameters are kept verbatim — ``@name`` is native SQLite
  parameter syntax, bindable as ``{"name": value}``.

``predicate_to_sql`` remains the compact human-readable rendering used in
reports; the executable form of a predicate appears only inside ``to_sql``
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.sqltext import (
    COMPARISON_SQL,
    BackendUnsupportedError,
    Resolver,
    comparable_in_sql,
    quote_identifier,
    render_predicate,
    sql_literal,
)
from repro.ra.analysis import split_equijoin_conjuncts
from repro.ra.ast import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Scalar,
    TruePredicate,
)

@dataclass
class _CTEBuilder:
    db: DatabaseSchema
    steps: list[tuple[str, str]] = field(default_factory=list)
    scans: dict[str, str] = field(default_factory=dict)
    counter: int = 0

    def add(self, sql: str) -> str:
        self.counter += 1
        name = f"step_{self.counter}"
        self.steps.append((name, sql))
        return name


def to_sql(expression: RAExpression, db: DatabaseSchema) -> str:
    """Executable SQLite rendering of an RA expression as a chain of CTEs.

    Raises :class:`~repro.engine.backends.sqlite.BackendUnsupportedError`
    for the few constructs SQLite cannot express faithfully (non-finite
    float literals, non-``+`` string arithmetic).
    """
    builder = _CTEBuilder(db)
    final, schema = _emit(expression, builder)
    last_name, last_sql = builder.steps[-1]
    if last_name == final and len(builder.steps) == 1:
        return last_sql
    ctes = ",\n".join(f"{name} AS (\n  {sql}\n)" for name, sql in builder.steps)
    columns = ", ".join(quote_identifier(a.name) for a in schema.attributes)
    return f"WITH {ctes}\nSELECT {columns} FROM {final}"


def predicate_to_sql(predicate: Predicate) -> str:
    """Compact SQL-style rendering of a predicate (for reports and docs)."""
    return _display_predicate(predicate)


# ---------------------------------------------------------------------------
# Operator emission
# ---------------------------------------------------------------------------


def _column_list(schema: RelationSchema) -> str:
    return ", ".join(quote_identifier(a.name) for a in schema.attributes)


def _schema_resolver(schema: RelationSchema, qualifier: str | None = None) -> Resolver:
    prefix = f"{qualifier}." if qualifier else ""

    def resolve(name: str) -> tuple[str, DataType | None]:
        attr = schema.attribute(name)  # raises UnknownAttributeError if absent
        return f"{prefix}{quote_identifier(attr.name, force=bool(qualifier))}", attr.dtype

    return resolve


def _two_sided_resolver(
    left: RelationSchema, right: RelationSchema
) -> Resolver:
    resolve_left = _schema_resolver(left, "L")
    resolve_right = _schema_resolver(right, "R")

    def resolve(name: str) -> tuple[str, DataType | None]:
        if left.has_attribute(name):
            return resolve_left(name)
        return resolve_right(name)

    return resolve


def _param_sql(param: Param) -> str:
    """``@name`` is native SQLite parameter syntax; keep it verbatim."""
    return f"@{param.name}"


def _exec_predicate(predicate: Predicate, resolve: Resolver) -> str:
    """Executable (0/1-valued) rendering — the shared dialect rules."""
    return render_predicate(predicate, resolve, _param_sql)


def _emit(node: RAExpression, builder: _CTEBuilder) -> tuple[str, RelationSchema]:
    if isinstance(node, RelationRef):
        return _emit_scan(node, builder)
    if isinstance(node, Selection):
        child, schema = _emit(node.child, builder)
        condition = _exec_predicate(node.predicate, _schema_resolver(schema))
        sql = f"SELECT {_column_list(schema)} FROM {child} WHERE {condition}"
        return builder.add(sql), schema
    if isinstance(node, Projection):
        child, schema = _emit(node.child, builder)
        output = node.output_schema(builder.db)
        columns = ", ".join(
            _aliased(quote_identifier(column, force="." in column), alias)
            for column, alias in zip(node.columns, node.output_names())
        )
        return builder.add(f"SELECT DISTINCT {columns} FROM {child}"), output
    if isinstance(node, Rename):
        child, schema = _emit(node.child, builder)
        output = node.output_schema(builder.db)
        columns = ", ".join(
            _aliased(quote_identifier(old.name, force="." in old.name), new.name)
            for old, new in zip(schema.attributes, output.attributes)
        )
        return builder.add(f"SELECT {columns} FROM {child}"), output
    if isinstance(node, Join):
        return _emit_theta_join(node, builder)
    if isinstance(node, NaturalJoin):
        return _emit_natural_join(node, builder)
    if isinstance(node, (Union, Difference, Intersection)):
        operator = {Union: "UNION", Difference: "EXCEPT", Intersection: "INTERSECT"}[
            type(node)
        ]
        left, left_schema = _emit(node.left, builder)
        right, right_schema = _emit(node.right, builder)
        # Explicit, schema-ordered column lists on both operands: compound
        # selects match columns by *position*, so the operand ordering must
        # be pinned here, not inherited from whatever the operand CTEs emit.
        sql = (
            f"SELECT {_column_list(left_schema)} FROM {left}"
            f" {operator} "
            f"SELECT {_column_list(right_schema)} FROM {right}"
        )
        return builder.add(sql), node.output_schema(builder.db)
    if isinstance(node, GroupBy):
        return _emit_group_by(node, builder)
    raise TypeError(f"cannot render node of type {type(node).__name__}")  # pragma: no cover


def _aliased(source_sql: str, alias: str) -> str:
    quoted = quote_identifier(alias)
    if source_sql == quoted:
        return source_sql
    return f"{source_sql} AS {quoted}"


def _emit_scan(node: RelationRef, builder: _CTEBuilder) -> tuple[str, RelationSchema]:
    schema = builder.db.relation(node.name)
    cached = builder.scans.get(node.name)
    if cached is None:
        # DISTINCT: the storage layer permits duplicate value rows (distinct
        # tids); the engine's scan deduplicates, so the SQL scan must too.
        sql = (
            f"SELECT DISTINCT {_column_list(schema)} "
            f"FROM {quote_identifier(node.name)}"
        )
        cached = builder.scans[node.name] = builder.add(sql)
    return cached, schema


def _emit_theta_join(node: Join, builder: _CTEBuilder) -> tuple[str, RelationSchema]:
    left, left_schema = _emit(node.left, builder)
    right, right_schema = _emit(node.right, builder)
    combined = node.output_schema(builder.db)
    pairs, residual = split_equijoin_conjuncts(
        node.effective_predicate(), left_schema, right_schema
    )
    resolve = _two_sided_resolver(left_schema, right_schema)
    columns = ", ".join(
        [
            _aliased(f"L.{quote_identifier(a.name, force=True)}", a.name)
            for a in left_schema.attributes
        ]
        + [
            _aliased(f"R.{quote_identifier(a.name, force=True)}", a.name)
            for a in right_schema.attributes
        ]
    )
    where = " AND ".join(
        _exec_predicate(p, resolve)
        for p in residual
        if not isinstance(p, TruePredicate)
    )
    for a, b in pairs:
        if not comparable_in_sql(
            left_schema.attribute(a).dtype, right_schema.attribute(b).dtype
        ):
            raise BackendUnsupportedError(
                "equi-join key types diverge from dict-key equality in SQLite"
            )
    if pairs:
        # IS, not =: the engine hoists these conjuncts into hash-join keys,
        # where NULL keys match NULL keys.
        condition = " AND ".join(
            f"L.{quote_identifier(a, force=True)} IS R.{quote_identifier(b, force=True)}"
            for a, b in pairs
        )
        sql = f"SELECT {columns} FROM {left} AS L JOIN {right} AS R ON {condition}"
        if where:
            sql += f" WHERE {where}"
    else:
        sql = f"SELECT {columns} FROM {left} AS L CROSS JOIN {right} AS R"
        if where:
            sql += f" WHERE {where}"
    return builder.add(sql), combined


def _emit_natural_join(node: NaturalJoin, builder: _CTEBuilder) -> tuple[str, RelationSchema]:
    left, left_schema = _emit(node.left, builder)
    right, right_schema = _emit(node.right, builder)
    combined = node.output_schema(builder.db)
    shared = node.shared_attributes(builder.db)
    shared_set = set(shared)
    columns = ", ".join(
        [
            _aliased(f"L.{quote_identifier(a.name, force=True)}", a.name)
            for a in left_schema.attributes
        ]
        + [
            _aliased(f"R.{quote_identifier(a.name, force=True)}", a.name)
            for a in right_schema.attributes
            if a.name not in shared_set
        ]
    )
    for name in shared:
        if not comparable_in_sql(
            left_schema.attribute(name).dtype, right_schema.attribute(name).dtype
        ):
            raise BackendUnsupportedError(
                "natural-join key types diverge from dict-key equality in SQLite"
            )
    if shared:
        condition = " AND ".join(
            f"L.{quote_identifier(name, force=True)} IS R.{quote_identifier(name, force=True)}"
            for name in shared
        )
        sql = f"SELECT {columns} FROM {left} AS L JOIN {right} AS R ON {condition}"
    else:
        sql = f"SELECT {columns} FROM {left} AS L CROSS JOIN {right} AS R"
    return builder.add(sql), combined


def _emit_group_by(node: GroupBy, builder: _CTEBuilder) -> tuple[str, RelationSchema]:
    child, schema = _emit(node.child, builder)
    output = node.output_schema(builder.db)
    group = ", ".join(quote_identifier(name, force="." in name) for name in node.group_by)
    aggregates = ", ".join(
        f"{spec.func.value.upper()}"
        f"({quote_identifier(spec.attribute, force='.' in spec.attribute) if spec.attribute else '*'})"
        f" AS {quote_identifier(spec.alias)}"
        for spec in node.aggregates
    )
    select_list = ", ".join(part for part in (group, aggregates) if part)
    sql = f"SELECT {select_list} FROM {child}"
    if node.group_by:
        sql += f" GROUP BY {group}"
    else:
        # Constant-expression grouping: one group when input is non-empty,
        # *no* output row when it is empty — matching the engine, unlike
        # SQL's plain ungrouped aggregate.
        sql += " GROUP BY 1 + 0"
    return builder.add(sql), output


# ---------------------------------------------------------------------------
# Display rendering (reports; not fed to a database)
# ---------------------------------------------------------------------------


def _display_predicate(predicate: Predicate) -> str:
    if isinstance(predicate, TruePredicate):
        return "TRUE"
    if isinstance(predicate, Comparison):
        op = COMPARISON_SQL[predicate.op]
        return f"{_display_scalar(predicate.left)} {op} {_display_scalar(predicate.right)}"
    if isinstance(predicate, And):
        return " AND ".join(f"({_display_predicate(p)})" for p in predicate.operands)
    if isinstance(predicate, Or):
        return " OR ".join(f"({_display_predicate(p)})" for p in predicate.operands)
    if isinstance(predicate, Not):
        return f"NOT ({_display_predicate(predicate.operand)})"
    raise TypeError(f"cannot render predicate of type {type(predicate).__name__}")


def _display_scalar(scalar: Scalar) -> str:
    if isinstance(scalar, ColumnRef):
        return quote_identifier(scalar.name)
    if isinstance(scalar, Literal):
        try:
            return sql_literal(scalar.value)
        except BackendUnsupportedError:
            # Display must never refuse: exotic values (nan, huge ints) are
            # only a problem for the executable path.
            return str(scalar.value)
    if isinstance(scalar, Param):
        return f"@{scalar.name}"
    if isinstance(scalar, Arithmetic):
        return f"({_display_scalar(scalar.left)} {scalar.op} {_display_scalar(scalar.right)})"
    raise TypeError(f"cannot render scalar of type {type(scalar).__name__}")
