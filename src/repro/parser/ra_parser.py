"""Recursive-descent parser for the relational algebra text DSL.

Grammar (binary operators are left-associative and share one precedence
level, as in the course's RA interpreter; unary operators bind tighter)::

    query   := binary
    binary  := unary ( binop unary )*
    binop   := \\join[_{pred}] | \\cross | \\union | \\diff | \\intersect
    unary   := \\select_{pred} unary
             | \\project_{cols} unary
             | \\rename_{renames} unary
             | \\aggr_{group: cols ; aggs} unary
             | atom
    atom    := '(' binary ')' | RelationName

Predicates support ``and``/``or``/``not``, the comparison operators
``= <> != < <= > >=``, string and numeric literals, dotted column names and
``@parameters``.  Projection columns accept ``col -> alias`` renaming;
``\\rename`` accepts either ``prefix: x`` or ``a -> b, c -> d``;
``\\aggr`` takes ``group: a, b ; count(*) -> n, avg(grade) -> g``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.parser.lexer import Token, tokenize
from repro.ra.ast import (
    AggregateFunction,
    AggregateSpec,
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.ra.predicates import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Scalar,
)

_AGGREGATE_FUNCTIONS = {f.value: f for f in AggregateFunction}


def parse_query(text: str) -> RAExpression:
    """Parse DSL text into a relational algebra expression."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_binary()
    parser.expect_end()
    return expression


def parse_predicate(text: str) -> Predicate:
    """Parse a standalone predicate (used by tests and tooling)."""
    parser = _PredicateParser(tokenize(text))
    predicate = parser.parse_or()
    parser.expect_end()
    return predicate


class _TokenStream:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        self._index += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            found = self.peek()
            raise ParseError(
                f"expected {value or kind}, found {found.value if found else 'end of input'}",
                position=found.position if found else None,
            )
        return token

    def expect_end(self) -> None:
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected trailing input {token.value!r}", position=token.position)


class _Parser(_TokenStream):
    """Parser for full RA expressions."""

    _BINARY_KEYWORDS = {"join", "cross", "union", "diff", "intersect"}

    def parse_binary(self) -> RAExpression:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token is None or token.kind != "KEYWORD" or token.value not in self._BINARY_KEYWORDS:
                return left
            self.next()
            block = self.accept("BLOCK")
            right = self.parse_unary()
            left = self._combine(token.value, left, right, block)

    def _combine(
        self, keyword: str, left: RAExpression, right: RAExpression, block: Token | None
    ) -> RAExpression:
        if keyword == "join":
            if block is None:
                return NaturalJoin(left, right)
            predicate = _PredicateParser(tokenize(block.value)).parse_and_finish()
            return Join(left, right, predicate)
        if block is not None:
            raise ParseError(f"\\{keyword} does not take an argument block", position=block.position)
        if keyword == "cross":
            return Join(left, right, None)
        if keyword == "union":
            return Union(left, right)
        if keyword == "diff":
            return Difference(left, right)
        if keyword == "intersect":
            return Intersection(left, right)
        raise ParseError(f"unknown binary operator \\{keyword}")  # pragma: no cover

    def parse_unary(self) -> RAExpression:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        if token.kind == "KEYWORD" and token.value in ("select", "project", "rename", "aggr"):
            self.next()
            block = self.expect("BLOCK")
            child = self.parse_unary()
            return self._apply_unary(token.value, block.value, child)
        if token.kind == "LPAREN":
            self.next()
            inner = self.parse_binary()
            self.expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            self.next()
            return RelationRef(token.value)
        raise ParseError(f"unexpected token {token.value!r}", position=token.position)

    def _apply_unary(self, keyword: str, block: str, child: RAExpression) -> RAExpression:
        if keyword == "select":
            predicate = _PredicateParser(tokenize(block)).parse_and_finish()
            return Selection(child, predicate)
        if keyword == "project":
            columns, aliases = _parse_projection_list(block)
            return Projection(child, columns, aliases)
        if keyword == "rename":
            return _parse_rename(block, child)
        if keyword == "aggr":
            return _parse_aggregate(block, child)
        raise ParseError(f"unknown unary operator \\{keyword}")  # pragma: no cover


def _parse_projection_list(block: str) -> tuple[tuple[str, ...], tuple[str, ...] | None]:
    stream = _TokenStream(tokenize(block))
    columns: list[str] = []
    aliases: list[str] = []
    has_alias = False
    while True:
        token = stream.expect("IDENT")
        columns.append(token.value)
        if stream.accept("OP", "->"):
            alias = stream.expect("IDENT")
            aliases.append(alias.value)
            has_alias = True
        else:
            aliases.append(token.value)
        if not stream.accept("COMMA"):
            break
    stream.expect_end()
    return tuple(columns), tuple(aliases) if has_alias else None


def _parse_rename(block: str, child: RAExpression) -> Rename:
    stream = _TokenStream(tokenize(block))
    first = stream.expect("IDENT")
    if first.value == "prefix":
        stream.expect("COLON")
        prefix = stream.expect("IDENT").value
        stream.expect_end()
        return Rename(child, prefix=prefix)
    mapping: list[tuple[str, str]] = []
    stream2 = _TokenStream(tokenize(block))
    while True:
        old = stream2.expect("IDENT")
        stream2.expect("OP", "->")
        new = stream2.expect("IDENT")
        mapping.append((old.value, new.value))
        if not stream2.accept("COMMA"):
            break
    stream2.expect_end()
    return Rename(child, attribute_mapping=tuple(mapping))


def _parse_aggregate(block: str, child: RAExpression) -> GroupBy:
    group_part, _, agg_part = block.partition(";")
    group_stream = _TokenStream(tokenize(group_part))
    group_columns: list[str] = []
    if group_stream.peek() is not None:
        label = group_stream.expect("IDENT")
        if label.value.lower() != "group":
            raise ParseError("\\aggr block must start with 'group:'")
        group_stream.expect("COLON")
        while group_stream.peek() is not None:
            group_columns.append(group_stream.expect("IDENT").value)
            if not group_stream.accept("COMMA"):
                break
        group_stream.expect_end()

    aggregates: list[AggregateSpec] = []
    agg_stream = _TokenStream(tokenize(agg_part))
    while agg_stream.peek() is not None:
        func_token = agg_stream.expect("IDENT")
        func_name = func_token.value.lower()
        if func_name not in _AGGREGATE_FUNCTIONS:
            raise ParseError(f"unknown aggregate function {func_token.value!r}")
        agg_stream.expect("LPAREN")
        if agg_stream.accept("STAR"):
            attribute: str | None = None
        else:
            attribute = agg_stream.expect("IDENT").value
        agg_stream.expect("RPAREN")
        agg_stream.expect("OP", "->")
        alias = agg_stream.expect("IDENT").value
        aggregates.append(AggregateSpec(_AGGREGATE_FUNCTIONS[func_name], attribute, alias))
        if not agg_stream.accept("COMMA"):
            break
    agg_stream.expect_end()
    if not aggregates:
        raise ParseError("\\aggr requires at least one aggregate after ';'")
    return GroupBy(child, tuple(group_columns), tuple(aggregates))


class _PredicateParser(_TokenStream):
    """Parser for predicate blocks (selection and join conditions)."""

    def parse_and_finish(self) -> Predicate:
        predicate = self.parse_or()
        self.expect_end()
        return predicate

    def parse_or(self) -> Predicate:
        operands = [self.parse_and()]
        while self._accept_word("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self) -> Predicate:
        operands = [self.parse_not()]
        while self._accept_word("and"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_not(self) -> Predicate:
        if self._accept_word("not"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        if self.accept("LPAREN"):
            inner = self.parse_or()
            self.expect("RPAREN")
            return inner
        left = self.parse_scalar()
        operator = self.expect("OP")
        op = "!=" if operator.value == "<>" else operator.value
        right = self.parse_scalar()
        return Comparison(op, left, right)

    def parse_scalar(self) -> Scalar:
        token = self.next()
        if token.kind == "IDENT":
            if token.value.startswith("@"):
                return Param(token.value[1:])
            lowered = token.value.lower()
            if lowered == "true":
                return Literal(True)
            if lowered == "false":
                return Literal(False)
            return ColumnRef(token.value)
        if token.kind == "NUMBER":
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            return Literal(token.value)
        raise ParseError(f"unexpected token {token.value!r} in predicate", position=token.position)

    def _accept_word(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "IDENT" and token.value.lower() == word:
            self.next()
            return True
        return False
