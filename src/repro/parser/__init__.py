"""Text DSL for relational algebra: tokenizer, parser and SQL renderer."""

from repro.parser.lexer import Token, tokenize
from repro.parser.ra_parser import parse_predicate, parse_query
from repro.parser.sql_writer import predicate_to_sql, to_sql

__all__ = [
    "Token",
    "parse_predicate",
    "parse_query",
    "predicate_to_sql",
    "to_sql",
    "tokenize",
]
