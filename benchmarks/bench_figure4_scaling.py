"""Benchmark regenerating Figure 4: database size vs per-component running time."""

from conftest import attach_rows, run_once

from repro.experiments import scaling_experiment


def test_figure4_scaling(benchmark, profile):
    result = run_once(benchmark, scaling_experiment, profile)
    attach_rows(benchmark, result)
    assert len(result.rows) == len(profile.database_sizes)
    for row in result.rows:
        # Optimizing a single tuple is not slower than optimizing every tuple
        # (up to timing noise on tiny formulas).
        assert row["solver_opt_s"] <= row["solver_opt_all_s"] * 1.5 + 1e-3
    # Provenance restricted to one tuple is cheaper than full provenance on the
    # largest instance (the prov-sp vs prov-all gap of the paper).
    largest = result.rows[-1]
    assert largest["prov_sp_s"] <= largest["prov_all_s"] * 1.5
