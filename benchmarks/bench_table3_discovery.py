"""Benchmark regenerating Table 3: |D| vs number of wrong queries discovered."""

from conftest import attach_rows, run_once

from repro.experiments import discovery_experiment


def test_table3_discovery(benchmark, profile):
    result = run_once(benchmark, discovery_experiment, profile)
    attach_rows(benchmark, result)
    discovered = result.column("wrong_queries_discovered")
    # Shape check: larger instances never discover fewer wrong queries (allowing
    # tiny fluctuations from the seeded corner cases).
    assert discovered == sorted(discovered) or max(discovered) - discovered[-1] <= 2
    assert discovered[-1] > 0
