"""Grading-service throughput: submissions/sec, serial vs batched vs pooled.

Models the paper's deployment (§6–§7.1): a whole class's submissions for the
eight course homework questions are graded against one hidden university
instance.  Each simulated student either solves a question or lands on one of
the hand-written classic mistakes (which earns a counterexample), so the
workload mixes cheap agreement checks with full counterexample searches —
and, as in a real class, many students submit the *same* wrong query.

Three configurations grade the identical workload:

* ``cold-serial``      — the pre-service consumption pattern: a fresh
                         :class:`~repro.ratest.system.RATest` (and therefore a
                         fresh engine session) per submission, the way the
                         ``explain`` CLI and the old example loops worked;
* ``service-serial``   — ``GradingService.submit_batch(..., workers=1)``:
                         one warm session shared by all submissions;
* ``service-pooled``   — the same batch with ``workers=4`` over the thread
                         pool and the locked shared session.

The benchmark asserts the service configurations return bit-identical
outcomes to cold grading, and that pooled batch grading beats serial
grading — the win is the shared warm session (plans + cached reference
results) plus batch deduplication (one counterexample explains every student
who made the same mistake); the pool adds safe concurrency on top, not CPU
parallelism (GIL).

Run directly (``PYTHONPATH=src python benchmarks/bench_service_throughput.py``)
for a table, or through pytest
(``pytest benchmarks/bench_service_throughput.py``) for the assertions.
"""

from __future__ import annotations

import random
import time

from repro.api import GradingService, SubmissionRequest
from repro.datagen import university_instance
from repro.engine import EngineSession
from repro.ratest import RATest
from repro.workload import course_questions

#: Hidden-instance size (students); ≈260 tuples, the scale of §7.1's grader.
HIDDEN_STUDENTS = 60
#: Simulated class size: each student submits one query per question.
CLASS_SIZE = 25
WORKERS = 4


def _submissions(seed: int = 7) -> list[SubmissionRequest]:
    rng = random.Random(seed)
    requests = []
    for student in range(CLASS_SIZE):
        for question in course_questions():
            candidates = (question.correct_text, *question.wrong_texts)
            # Half the class gets it right; mistakes repeat across students.
            submitted = question.correct_text if rng.random() < 0.5 else rng.choice(candidates)
            requests.append(
                SubmissionRequest(
                    question.correct_text,
                    submitted,
                    id=f"student{student}/{question.key}",
                )
            )
    return requests


def run_benchmark(seed: int = 2018) -> dict:
    instance = university_instance(HIDDEN_STUDENTS, seed=seed)
    requests = _submissions()

    # Build the per-relation hash indexes once so every configuration starts
    # from the same storage state (they are cached on the shared instance).
    warmup = EngineSession(instance)
    for question in course_questions():
        warmup.evaluate(question.correct_query)

    start = time.perf_counter()
    cold_outcomes = [
        RATest(instance).check(request.correct_query, request.test_query)
        for request in requests
    ]
    cold_s = time.perf_counter() - start

    serial_service = GradingService.for_instance(instance, name="hidden")
    start = time.perf_counter()
    serial_graded = serial_service.submit_batch(requests, workers=1)
    serial_s = time.perf_counter() - start

    pooled_service = GradingService.for_instance(instance, name="hidden")
    start = time.perf_counter()
    pooled_graded = pooled_service.submit_batch(requests, workers=WORKERS)
    pooled_s = time.perf_counter() - start

    def grades(outcomes):
        return [outcome.to_dict(include_timings=False) for outcome in outcomes]

    assert grades(cold_outcomes) == grades(g.outcome for g in serial_graded)
    assert grades(cold_outcomes) == grades(g.outcome for g in pooled_graded)

    n = len(requests)
    distinct = len({(r.correct_query, r.test_query) for r in requests})
    return {
        "total_tuples": instance.total_size(),
        "submissions": n,
        "distinct": distinct,
        "wrong": sum(1 for g in serial_graded if not g.correct),
        "cold_s": cold_s,
        "serial_s": serial_s,
        "pooled_s": pooled_s,
        "cold_rate": n / cold_s,
        "serial_rate": n / serial_s,
        "pooled_rate": n / pooled_s,
        "speedup_serial": cold_s / serial_s,
        "speedup_pooled": cold_s / pooled_s,
    }


def test_service_throughput(benchmark=None):
    if benchmark is not None:
        result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
        benchmark.extra_info["result"] = result
    else:  # plain pytest without pytest-benchmark
        result = run_benchmark()
    assert result["wrong"] > 0  # the workload exercises counterexamples
    # The acceptance bar: pooled batch grading beats per-submission serial
    # grading (shared warm session + dedup; the pool must not squander it).
    # Locally ~8x; 2x leaves headroom for noisy CI machines.
    assert result["speedup_pooled"] > 2.0


def main() -> None:
    result = run_benchmark()
    print(
        f"course grading workload: {result['submissions']} submissions "
        f"({result['distinct']} distinct, {result['wrong']} wrong) "
        f"on {result['total_tuples']} hidden tuples"
    )
    print(
        f"  cold serial (fresh RATest each)   : {result['cold_s']:7.3f} s   "
        f"{result['cold_rate']:7.2f} subs/s"
    )
    print(
        f"  submit_batch(workers=1)           : {result['serial_s']:7.3f} s   "
        f"{result['serial_rate']:7.2f} subs/s   ({result['speedup_serial']:.2f}x)"
    )
    print(
        f"  submit_batch(workers={WORKERS})           : {result['pooled_s']:7.3f} s   "
        f"{result['pooled_rate']:7.2f} subs/s   ({result['speedup_pooled']:.2f}x)"
    )
    from _summary import write_summary

    print(f"wrote {write_summary('service_throughput', result)}")


if __name__ == "__main__":
    main()
