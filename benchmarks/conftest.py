"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
experiment drivers are deterministic but not cheap, so each benchmark runs its
driver exactly once (``pedantic`` mode) and attaches the resulting rows to the
benchmark's ``extra_info`` so the numbers can be inspected in the JSON output
(``pytest benchmarks/ --benchmark-only --benchmark-json=bench.json``).

Set ``REPRO_BENCH_PROFILE=paper`` to run closer to the paper's scales
(considerably slower); the default ``quick`` profile finishes in minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentResult, ScaleProfile


@pytest.fixture(scope="session")
def profile() -> ScaleProfile:
    """The scale profile used by every benchmark in this session."""
    return ScaleProfile.by_name(os.environ.get("REPRO_BENCH_PROFILE", "quick"))


def attach_rows(benchmark, result: ExperimentResult) -> None:
    """Record the experiment's rows and metadata on the benchmark entry."""
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["rows"] = result.rows
    benchmark.extra_info["metadata"] = result.metadata


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
