"""Ablation benchmarks for the solver layer design choices called out in DESIGN.md.

These are conventional micro-benchmarks (multiple rounds) rather than one-shot
experiment drivers: they time the min-ones strategies (incremental descend vs
rebuild-per-probe binary search), the Naive-M baseline, and the end-to-end Optσ
pipeline on the paper's running example.
"""

import pytest

from repro.core import smallest_witness_optsigma
from repro.datagen import toy_university_instance, university_instance
from repro.provenance import annotate, band, bnot, bor, var
from repro.ra import Difference
from repro.solver import MinOnesProblem, MinOnesSolver
from repro.workload import course_questions


def _chain_formula(width: int):
    """A formula whose minimum model keeps one variable per block."""
    blocks = []
    for i in range(width):
        blocks.append(bor(var(f"a{i}"), band(var(f"b{i}"), var(f"c{i}"))))
    return band(*blocks) & bnot(var("forbidden"))


def _problem(width: int) -> MinOnesProblem:
    problem = MinOnesProblem()
    problem.add_constraint(_chain_formula(width))
    return problem


@pytest.mark.parametrize("width", [4, 8])
def test_minones_descend(benchmark, width):
    result = benchmark(lambda: MinOnesSolver(_problem(width)).minimize(strategy="descend"))
    assert result.cost == width
    assert result.optimal


@pytest.mark.parametrize("width", [4, 8])
def test_minones_binary(benchmark, width):
    result = benchmark(lambda: MinOnesSolver(_problem(width)).minimize(strategy="binary"))
    assert result.cost == width


def test_naive_enumeration_128(benchmark):
    result = benchmark(
        lambda: MinOnesSolver(_problem(4), default_phase=True).enumerate_models(128)
    )
    assert result.best is not None


def test_provenance_annotation_running_example(benchmark):
    instance = toy_university_instance()
    question = course_questions()[1]
    diff = Difference(question.correct_query, question.handwritten_wrong_queries[0])
    annotated = benchmark(lambda: annotate(diff, instance))
    assert len(annotated) > 0


def test_optsigma_end_to_end_running_example(benchmark):
    instance = toy_university_instance()
    question = course_questions()[1]
    wrong = question.handwritten_wrong_queries[0]
    result = benchmark(
        lambda: smallest_witness_optsigma(question.correct_query, wrong, instance)
    )
    assert result.size == 3


def test_optsigma_end_to_end_medium_instance(benchmark):
    instance = university_instance(120, seed=5)
    question = course_questions()[1]
    wrong = question.handwritten_wrong_queries[0]
    result = benchmark.pedantic(
        lambda: smallest_witness_optsigma(question.correct_query, wrong, instance),
        rounds=3,
        iterations=1,
    )
    assert result.verified
