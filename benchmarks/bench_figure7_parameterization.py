"""Benchmark regenerating Figure 7: parameterization effectiveness on TPC-H Q18."""

from conftest import attach_rows, run_once

from repro.experiments import parameterization_experiment


def test_figure7_parameterization(benchmark, profile):
    result = run_once(benchmark, parameterization_experiment, profile)
    attach_rows(benchmark, result)
    by_algorithm = {row["algorithm"]: row for row in result.rows}
    basic = by_algorithm["Agg-Basic"]["mean_counterexample_size"]
    param = by_algorithm["Agg-Param"]["mean_counterexample_size"]
    # Paper's shape: parameterization shrinks the counterexample.
    if basic is not None and param is not None:
        assert param <= basic
