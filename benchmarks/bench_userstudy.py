"""Benchmark regenerating the user-study artifacts: Figure 8, Table 5, Figures 9–10."""

from conftest import attach_rows, run_once

from repro.experiments import user_study_experiments


def test_user_study(benchmark, profile):
    results = run_once(benchmark, user_study_experiments, profile)
    for key, result in results.items():
        benchmark.extra_info[key] = result.rows
    table5 = {row["problem"]: row for row in results["table5"].rows}
    # Paper's shape: RATest users do at least as well on the hard problems.
    assert table5["g"]["user_mean_score"] >= table5["g"]["non_user_mean_score"]
    assert table5["i"]["user_mean_score"] >= table5["i"]["non_user_mean_score"]
    transfer = {row["group"]: row for row in results["figure9"].rows}
    assert (
        transfer["used RATest on (i)"]["mean_score_h"]
        >= transfer["did not use RATest on (i)"]["mean_score_h"]
    )
