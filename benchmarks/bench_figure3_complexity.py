"""Benchmark regenerating Figure 3: query complexity vs Optσ component time."""

from conftest import attach_rows, run_once

from repro.experiments import complexity_experiment


def test_figure3_complexity(benchmark, profile):
    result = run_once(benchmark, complexity_experiment, profile)
    attach_rows(benchmark, result)
    assert result.rows
    # Runtime should (weakly) grow with query complexity: compare the mean total
    # time of the simplest third against the most complex third of the pairs.
    rows = result.rows
    third = max(1, len(rows) // 3)
    simple = sum(row["total_s"] for row in rows[:third]) / third
    complex_ = sum(row["total_s"] for row in rows[-third:]) / third
    assert complex_ >= simple * 0.5  # complex pairs are not systematically cheaper
