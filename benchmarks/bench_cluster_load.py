"""Cluster load: owner-routed scale-out, event-loop concurrency, kill drill.

The cluster follow-up to ``bench_server_load.py``: the same simulated course
workload (``CLASS_SIZE`` students × 8 questions), now spread over several
``(dataset, seed)`` grading keys chosen so a 4-peer consistent-hash ring
splits them evenly, graded through real ``repro serve`` subprocesses booted
by :class:`~repro.cluster.supervisor.ClusterSupervisor` and driven by the
owner-routed :class:`~repro.cluster.client.ClusterClient`.

Four claims are checked, not just timed:

1. **Equivalence** — every grade served by the cluster (any shard count,
   before and during failure) is bit-identical (store/wall-time fields
   aside) to in-process :class:`~repro.api.GradingService` grading.
2. **Event-loop fix** — a *single* shard's warm throughput at 64 closed-loop
   clients no longer drops below its 16-client figure (the PR 4
   thread-per-connection server lost ~25% there; the ``selectors`` event
   loop must not).
3. **Scale-out** — 4 shards beat 1 shard on warm throughput.  The asserted
   floor self-calibrates to the hardware: the headline "4 shards ≥ 3× one
   shard" claim needs ≥ 6 usable cores (4 shard frontends + the load
   generators); on smaller machines the bench still rejects collapse, at a
   floor matched to the parallelism that physically exists (see
   :func:`required_scaling`).  ``REPRO_BENCH_MIN_SCALING`` overrides.
4. **Kill-one-shard drill** — SIGKILL one daemon mid-run: no request fails
   permanently, outcomes stay bit-identical, and after the heartbeat
   timeout every key has exactly one live owner agreed on by all survivors.

Run directly::

    PYTHONPATH=src python benchmarks/bench_cluster_load.py

Environment knobs: ``REPRO_BENCH_CLASS_SIZE`` (default 25 → 200 submissions),
``REPRO_BENCH_SERVER_WORKERS`` (grading workers per shard, default 2),
``REPRO_BENCH_SINGLE_CLIENTS`` (default ``16,64``),
``REPRO_BENCH_CLUSTER_SHARDS`` (default 4), ``REPRO_BENCH_CLUSTER_CLIENTS``
(default 64), ``REPRO_BENCH_CLIENT_PROCS`` (load-generator processes,
default ``min(4, cores)``), ``REPRO_BENCH_MIN_SCALING``,
``REPRO_BENCH_NO_DROP`` (default 0.85).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import GradingService, SubmissionRequest
from repro.cluster.client import ClusterClient
from repro.cluster.ring import HashRing, placement_key
from repro.cluster.supervisor import ClusterSupervisor
from repro.server.client import GradingClient
from repro.workload import course_questions

DATASET = "university:40"
CLASS_SIZE = int(os.environ.get("REPRO_BENCH_CLASS_SIZE", "25"))
SERVER_WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "2"))
SINGLE_CLIENTS = tuple(
    int(c) for c in os.environ.get("REPRO_BENCH_SINGLE_CLIENTS", "16,64").split(",")
)
CLUSTER_SHARDS = int(os.environ.get("REPRO_BENCH_CLUSTER_SHARDS", "4"))
CLUSTER_CLIENTS = int(os.environ.get("REPRO_BENCH_CLUSTER_CLIENTS", "64"))
NO_DROP = float(os.environ.get("REPRO_BENCH_NO_DROP", "0.85"))
MAX_QUEUE = 256


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


CLIENT_PROCS = int(
    os.environ.get("REPRO_BENCH_CLIENT_PROCS", str(min(4, usable_cores())))
)


def required_scaling(cores: int) -> float:
    """The asserted 4-vs-1-shard warm floor for this machine.

    Shards are separate processes, so warm serving parallelises across
    cores — but only across cores that exist.  4 shard frontends plus the
    closed-loop load generators need ~6 cores before the headline 3× is
    physically reachable; below that the bench's job is to reject
    *collapse* (sharding overhead eating the throughput), not to demand
    parallelism the hardware cannot provide.
    """
    if cores >= 6:
        return 3.0
    if cores >= 4:
        return 1.6
    if cores >= 2:
        return 0.9
    # One core: 4 shards = pure process oversubscription.  Anything above
    # a collapse (scheduler thrash costing ~4x) is acceptable here.
    return 0.25


def balanced_seeds(shard_names: list[str], per_shard: int, start: int = 2018) -> list[int]:
    """Seeds whose ``(DATASET, seed)`` keys split exactly evenly over the ring.

    Placement is SHA-256-deterministic, so the owner of every candidate key
    is known before any daemon boots — the bench simply scans seeds until
    each shard owns ``per_shard`` of them.
    """
    ring = HashRing(shard_names, virtual_nodes=64)
    want = {name: per_shard for name in shard_names}
    seeds: list[int] = []
    seed = start
    while any(count > 0 for count in want.values()):
        owner = ring.owner(placement_key(DATASET, seed))
        assert owner is not None
        if want[owner] > 0:
            want[owner] -= 1
            seeds.append(seed)
        seed += 1
    return sorted(seeds)


def build_workload(
    class_size: int, seeds: list[int], *, rng_seed: int = 7
) -> list[SubmissionRequest]:
    """class_size students × 8 questions, students spread over the seeds."""
    rng = random.Random(rng_seed)
    requests = []
    for student in range(class_size):
        seed = seeds[student % len(seeds)]
        for question in course_questions():
            candidates = (question.correct_text, *question.wrong_texts)
            submitted = question.correct_text if rng.random() < 0.5 else rng.choice(candidates)
            requests.append(
                SubmissionRequest(
                    question.correct_text,
                    submitted,
                    dataset=DATASET,
                    seed=seed,
                    id=f"student{student}/{question.key}",
                )
            )
    return requests


def in_process_baseline(requests: list[SubmissionRequest]) -> tuple[list[dict], float]:
    service = GradingService(default_dataset=DATASET)
    start = time.perf_counter()
    graded = service.submit_batch(requests, workers=4)
    elapsed = time.perf_counter() - start
    return [g.to_dict(include_timings=False) for g in graded], elapsed


def strip(envelope: dict) -> dict:
    """The deterministic part of a server grade envelope."""
    return {k: v for k, v in envelope.items() if k not in ("store", "wall_time")}


# -- load generation ----------------------------------------------------------
#
# Closed-loop clients in *separate processes*: a single Python load generator
# is GIL-bound and would cap a multi-shard cluster at roughly one core's
# worth of client work, under-measuring exactly the configurations this
# bench exists to measure.  Each child owns a slice of the workload, runs
# ``threads`` ClusterClient threads over it, and times itself from the GO
# handshake (so child startup cost never pollutes the throughput number).

_CLIENT_DRIVER = r"""
import json, sys, threading, time
from repro.cluster.client import ClusterClient

spec = json.load(open(sys.argv[1]))
urls, payloads, threads_wanted = spec["urls"], spec["payloads"], spec["threads"]
work = list(enumerate(payloads))
results = [None] * len(payloads)
lock = threading.Lock()

def run_client(client):
    with client:
        while True:
            with lock:
                if not work:
                    return
                index, payload = work.pop()
            results[index] = client.grade(payload)

# Topology fetch and socket setup happen *before* the GO handshake so the
# timed window measures steady-state grading, not connection ramp-up.
clients = [ClusterClient(urls) for _ in range(threads_wanted)]
threads = [threading.Thread(target=run_client, args=(c,)) for c in clients]
print("READY", flush=True)
assert sys.stdin.readline().strip() == "GO"
start = time.perf_counter()
for t in threads:
    t.start()
for t in threads:
    t.join()
elapsed = time.perf_counter() - start
json.dump({"elapsed": elapsed, "results": results}, open(sys.argv[2], "w"))
print("DONE", flush=True)
"""


def closed_loop(
    urls: list[str],
    payloads: list[dict],
    clients: int,
    *,
    procs: int | None = None,
    repeat: int = 1,
) -> tuple[float, list[dict]]:
    """Grade ``payloads`` (``repeat`` passes' worth, interleaved) closed-loop
    over ``clients`` threads in ``procs`` processes; returns (elapsed
    seconds, results in submission order, repeated)."""
    procs = CLIENT_PROCS if procs is None else procs
    payloads = payloads * repeat
    procs = max(1, min(procs, clients, len(payloads)))
    chunks: list[list[tuple[int, dict]]] = [[] for _ in range(procs)]
    for index, payload in enumerate(payloads):
        chunks[index % procs].append((index, payload))
    threads_per_proc = max(1, clients // procs)

    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing

    with tempfile.TemporaryDirectory(prefix="repro-bench-clients") as tmp:
        children = []
        for rank, chunk in enumerate(chunks):
            spec_path = Path(tmp) / f"spec-{rank}.json"
            out_path = Path(tmp) / f"out-{rank}.json"
            spec_path.write_text(
                json.dumps(
                    {
                        "urls": urls,
                        "payloads": [payload for _, payload in chunk],
                        "threads": threads_per_proc,
                    }
                )
            )
            process = subprocess.Popen(
                [sys.executable, "-c", _CLIENT_DRIVER, str(spec_path), str(out_path)],
                env=env,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            children.append((process, chunk, out_path))
        for process, _, _ in children:
            line = process.stdout.readline().strip()
            if line != "READY":
                process.kill()
                raise RuntimeError(
                    f"load generator failed to start: {process.stderr.read()}"
                )
        for process, _, _ in children:
            process.stdin.write("GO\n")
            process.stdin.flush()
        results: list[dict | None] = [None] * len(payloads)
        elapsed = 0.0
        for process, chunk, out_path in children:
            if process.wait(timeout=900) != 0:
                raise RuntimeError(f"load generator failed: {process.stderr.read()}")
            report = json.loads(out_path.read_text())
            elapsed = max(elapsed, report["elapsed"])
            for (index, _), envelope in zip(chunk, report["results"]):
                results[index] = envelope
    assert all(r is not None for r in results)
    return elapsed, results  # type: ignore[return-value]


def measure(
    label: str,
    urls: list[str],
    payloads: list[dict],
    expected: list[dict],
    clients: int,
    *,
    warm: bool,
) -> float:
    # Warm passes are fast and short; three interleaved repeats of the
    # workload give the measurement a window wide enough to mean something.
    repeat = 3 if warm else 1
    elapsed, results = closed_loop(urls, payloads, clients, repeat=repeat)
    assert [strip(e) for e in results] == expected * repeat, f"{label}: grades differ"
    throughput = len(results) / elapsed
    # Identical submissions in flight concurrently coalesce onto one store
    # hit; both labels mean "no grading work was done".
    hits = sum(1 for e in results if e["store"] in ("hit", "coalesced"))
    print(
        f"  {label:<34} {elapsed:>7.3f}s {throughput:>8.0f} subs/s"
        f"  store hits {hits}/{len(results)}"
    )
    if warm:
        assert hits >= 0.98 * len(results), (
            f"{label}: warm pass must be served from the stores, got {hits} hits"
        )
    return throughput


def cluster_metrics(urls: list[str]) -> None:
    """Print the per-shard repro_cluster_* routing counters."""
    for url in urls:
        with GradingClient(url) as client:
            lines = [
                line
                for line in client.metrics_text().splitlines()
                if line.startswith("repro_cluster_")
                and ("_total" in line or line.startswith("repro_cluster_ring_size"))
                and not line.startswith("#")
            ]
        print(f"  {url}: " + "; ".join(lines))


# -- the kill-one-shard drill -------------------------------------------------


def kill_drill(
    payloads: list[dict],
    expected: list[dict],
    *,
    shards: int = 3,
    clients: int = 8,
    convergence_timeout: float = 20.0,
) -> None:
    """SIGKILL the busiest shard mid-run; assert zero permanent failures,
    bit-identical outcomes, and post-timeout live-owner agreement."""
    keys = sorted({(p["dataset"], p["seed"]) for p in payloads})
    shard_names = [f"shard-{i}" for i in range(shards)]
    ring = HashRing(shard_names, virtual_nodes=64)
    owned: dict[str, int] = {name: 0 for name in shard_names}
    for dataset, seed in keys:
        owned[ring.owner(placement_key(dataset, seed))] += 1
    victim = max(owned, key=lambda name: owned[name])
    print(
        f"  {len(keys)} keys over {shards} shards {dict(sorted(owned.items()))}; "
        f"victim: {victim}"
    )
    assert owned[victim] > 0, "the drill must kill a shard that owns keys"

    with ClusterSupervisor(
        shards, workers=SERVER_WORKERS, max_queue=MAX_QUEUE, restart=False
    ) as supervisor:
        supervisor.start(wait_healthy=True)
        urls = supervisor.urls
        survivors = [
            spec.url for spec in supervisor.specs if spec.name != victim
        ]
        results: list[dict | None] = [None] * len(payloads)
        work = list(enumerate(payloads))
        lock = threading.Lock()
        progress = {"done": 0}
        kill_when = max(1, len(payloads) // 4)
        kill_now = threading.Event()

        def run_client() -> None:
            with ClusterClient(urls) as client:
                while True:
                    with lock:
                        if not work:
                            return
                        index, payload = work.pop()
                    results[index] = client.grade(payload)
                    with lock:
                        progress["done"] += 1
                        if progress["done"] >= kill_when:
                            kill_now.set()

        threads = [threading.Thread(target=run_client) for _ in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        assert kill_now.wait(timeout=300), "drill stalled before the kill point"
        pid = supervisor.kill_shard(victim)
        print(f"  SIGKILLed {victim} (pid {pid}) after {progress['done']} grades")
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert all(r is not None for r in results), "a request failed permanently"
        assert [strip(e) for e in results] == expected, (  # type: ignore[arg-type]
            "grades during the drill differ from in-process grading"
        )
        print(
            f"  drill: {len(payloads)} grades in {elapsed:.3f}s "
            f"({len(payloads) / elapsed:.0f} subs/s), zero failures, bit-identical"
        )

        # After the heartbeat timeout every survivor must agree the victim is
        # out of the live ring and every key must have exactly one live owner
        # (the same one on every survivor — placement is deterministic).
        deadline = time.monotonic() + convergence_timeout
        views: dict[str, dict] = {}
        for url in survivors:
            with GradingClient(url) as client:
                while True:
                    health = client.cluster_health()
                    if victim not in health["live"]:
                        views[url] = health
                        break
                    if time.monotonic() > deadline:
                        raise AssertionError(
                            f"{url} still lists {victim} live after "
                            f"{convergence_timeout}s"
                        )
                    time.sleep(0.2)
        owners_seen: dict[tuple[str, int], set[str]] = {key: set() for key in keys}
        for url, health in views.items():
            live_ring = HashRing(
                health["live"], virtual_nodes=int(health["virtual_nodes"])
            )
            for dataset, seed in keys:
                owner = live_ring.owner(placement_key(dataset, seed))
                assert owner is not None and owner in health["live"], (
                    f"{url}: key {(dataset, seed)} has no live owner"
                )
                owners_seen[(dataset, seed)].add(owner)
        assert all(len(owners) == 1 for owners in owners_seen.values()), (
            f"survivors disagree on ownership: {owners_seen}"
        )
        print(
            f"  post-kill: every key regained exactly one live owner, "
            f"survivors agree ({sorted(views[survivors[0]]['live'])})"
        )


# -- stages -------------------------------------------------------------------


def run_benchmark() -> dict:
    cores = usable_cores()
    min_scaling_env = os.environ.get("REPRO_BENCH_MIN_SCALING")
    min_scaling = (
        float(min_scaling_env) if min_scaling_env else required_scaling(cores)
    )
    shard_names = [f"shard-{i}" for i in range(CLUSTER_SHARDS)]
    seeds = balanced_seeds(shard_names, per_shard=2)
    requests = build_workload(CLASS_SIZE, seeds)
    payloads = [request.to_dict() for request in requests]
    print(
        f"course workload: {len(requests)} submissions ({CLASS_SIZE} students x "
        f"{len(course_questions())} questions) over {len(seeds)} (dataset, seed) "
        f"keys on {DATASET}\n"
        f"machine: {cores} usable core(s), {CLIENT_PROCS} load-gen process(es), "
        f"{SERVER_WORKERS} grading workers/shard; asserted 4-vs-1 scaling floor "
        f"{min_scaling:.2f}x"
        + ("" if cores >= 6 else " (the headline 3x claim needs >=6 cores)")
    )

    expected, in_process_time = in_process_baseline(requests)
    print(
        f"in-process submit_batch: {in_process_time:.3f}s "
        f"({len(requests) / in_process_time:.0f} subs/s)"
    )

    # -- stage 1: one shard, the event-loop concurrency claim ----------------
    print("\n[1] single shard (event-loop frontend)")
    single_warm: dict[int, float] = {}
    with ClusterSupervisor(
        1, workers=SERVER_WORKERS, max_queue=MAX_QUEUE
    ) as supervisor:
        supervisor.start(wait_healthy=True)
        urls = supervisor.urls
        measure("cold, 16 clients", urls, payloads, expected, 16, warm=False)
        for clients in SINGLE_CLIENTS:
            single_warm[clients] = measure(
                f"warm, {clients} clients", urls, payloads, expected, clients, warm=True
            )
    low, high = min(SINGLE_CLIENTS), max(SINGLE_CLIENTS)
    assert single_warm[high] >= NO_DROP * single_warm[low], (
        f"single-shard warm throughput dropped at {high} clients: "
        f"{single_warm[high]:.0f} vs {single_warm[low]:.0f} subs/s at {low} "
        f"(floor {NO_DROP:.2f}x) — the event loop must hold concurrency"
    )
    best_single = max(single_warm.values())

    # -- stage 2: N shards, the scale-out claim ------------------------------
    print(f"\n[2] {CLUSTER_SHARDS} shards (owner-routed clients)")
    with ClusterSupervisor(
        CLUSTER_SHARDS, workers=SERVER_WORKERS, max_queue=MAX_QUEUE
    ) as supervisor:
        supervisor.start(wait_healthy=True)
        urls = supervisor.urls
        measure(
            f"cold, {CLUSTER_CLIENTS} clients",
            urls, payloads, expected, CLUSTER_CLIENTS, warm=False,
        )
        cluster_warm = measure(
            f"warm, {CLUSTER_CLIENTS} clients",
            urls, payloads, expected, CLUSTER_CLIENTS, warm=True,
        )
        cluster_metrics(urls)
    scaling = cluster_warm / best_single
    print(
        f"  scale-out: {CLUSTER_SHARDS} shards {cluster_warm:.0f} subs/s vs "
        f"1 shard {best_single:.0f} subs/s = {scaling:.2f}x "
        f"(floor {min_scaling:.2f}x on {cores} core(s))"
    )
    assert scaling >= min_scaling, (
        f"{CLUSTER_SHARDS}-shard warm throughput must be >= {min_scaling:.2f}x "
        f"one shard on this machine, got {scaling:.2f}x"
    )

    # -- stage 3: the kill-one-shard drill -----------------------------------
    print("\n[3] kill-one-shard drill (3 shards, cold, SIGKILL mid-run)")
    kill_drill(payloads, expected)

    return {
        "single_warm": single_warm,
        "cluster_warm": cluster_warm,
        "scaling": scaling,
        "min_scaling": min_scaling,
        "cores": cores,
    }


def test_cluster_load_smoke():
    """Pytest entry point: a 2-shard cold+warm equivalence pass, kept tiny.

    Throughput asserts are deliberately absent — this smoke runs wherever the
    test suite runs, including single-core CI containers where they would
    measure the scheduler, not the cluster.
    """
    seeds = balanced_seeds(["shard-0", "shard-1"], per_shard=2)
    requests = build_workload(3, seeds)
    payloads = [request.to_dict() for request in requests]
    expected, _ = in_process_baseline(requests)
    with ClusterSupervisor(2, workers=1, max_queue=MAX_QUEUE) as supervisor:
        supervisor.start(wait_healthy=True)
        urls = supervisor.urls
        _, cold = closed_loop(urls, payloads, clients=4, procs=1)
        assert [strip(e) for e in cold] == expected
        _, warm = closed_loop(urls, payloads, clients=4, procs=1)
        assert [strip(e) for e in warm] == expected
        hits = sum(1 for e in warm if e["store"] == "hit")
        assert hits >= 0.98 * len(payloads)


if __name__ == "__main__":
    _result = run_benchmark()
    from _summary import write_summary

    print(f"wrote {write_summary('cluster_load', _result)}")
