"""Benchmark for the Table 1 companion ablation: specialised vs generic algorithms."""

from conftest import attach_rows, run_once

from repro.experiments import dichotomy_experiment


def test_table1_dichotomy(benchmark, profile):
    result = run_once(benchmark, dichotomy_experiment, profile)
    attach_rows(benchmark, result)
    assert result.rows
    # Wherever a specialised poly-time algorithm applies, its witness is as
    # small as the generic constraint-based solver's.
    for row in result.rows:
        if "specialised_size" in row:
            assert row["specialised_size"] == row["optsigma_size"]
