"""Benchmark regenerating Figure 5: witness size vs constraint-solving strategy."""

from conftest import attach_rows, run_once

from repro.experiments import solver_strategy_experiment


def test_figure5_solver_strategy(benchmark, profile):
    result = run_once(benchmark, solver_strategy_experiment, profile)
    attach_rows(benchmark, result)
    by_strategy = {row["strategy"]: row for row in result.rows}
    opt = by_strategy["Opt"]
    # The optimizing solver never returns a larger witness than any Naive-M.
    for label, row in by_strategy.items():
        if label != "Opt":
            assert opt["mean_witness_size"] <= row["mean_witness_size"] + 1e-9
