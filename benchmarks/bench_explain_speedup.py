"""Explanation-mode grading: cold sessions vs. one warm session.

Counterexample construction (the paper's core pipeline: provenance → min-ones
SAT) now runs its provenance through the engine's logically optimized plans
and the session's structural plan/result caches — the same machinery that
sped up set-semantics grading in PR 1.  This benchmark measures what that
buys a grading service in *explanation mode*, where every wrong submission
gets a verified counterexample:

* ``cold``  — a fresh ``EngineSession`` per submission: every explain pays
              plan compilation, reference evaluation and provenance scans
              from scratch (a server worker before warm sessions);
* ``warm``  — one shared session, the way ``GradingService`` explains: the
              reference side, shared scans and repeated subplans are cache
              hits across the whole submission batch.

Outcomes are asserted bit-identical between the two configurations, and the
warm pass must beat the cold pass — the acceptance gate wired into CI's
benchmark smoke.

Run directly (``PYTHONPATH=src python benchmarks/bench_explain_speedup.py``)
for a table, or through pytest to enforce the speedup gate.
"""

from __future__ import annotations

import time

from repro.core import find_smallest_counterexample
from repro.datagen import university_instance
from repro.engine import EngineSession
from repro.errors import ReproError
from repro.ra.evaluator import evaluate
from repro.workload import course_questions

#: Students in the seeded university instance (≈25× the toy of Figure 1).
STUDENTS = 200
#: How many times the wrong-query pool is graded (a class of submissions
#: resubmitting the same classic mistakes across assignments).
ROUNDS = 3


def _wrong_pairs(instance):
    """Every course question's handwritten wrong queries that differ on data."""
    pairs = []
    for question in course_questions():
        correct = question.correct_query
        for index, wrong in enumerate(question.handwritten_wrong_queries):
            try:
                if evaluate(correct, instance).same_rows(evaluate(wrong, instance)):
                    continue
            except ReproError:
                continue
            pairs.append((f"{question.key}[{index}]", correct, wrong))
    return pairs


def _explain(correct, wrong, instance, session):
    try:
        result = find_smallest_counterexample(
            correct, wrong, instance, session=session
        )
    except ReproError as exc:
        return ("error", type(exc).__name__)
    return (
        "ok",
        sorted(result.tids),
        result.algorithm,
        result.optimal,
        sorted(map(str, result.q1_rows.rows)),
        sorted(map(str, result.q2_rows.rows)),
    )


def run_benchmark(students: int = STUDENTS, rounds: int = ROUNDS, seed: int = 3) -> dict:
    instance = university_instance(students, seed=seed)
    pairs = _wrong_pairs(instance)
    workload = pairs * rounds

    start = time.perf_counter()
    cold_outcomes = [
        _explain(correct, wrong, instance, EngineSession(instance))
        for _, correct, wrong in workload
    ]
    cold_s = time.perf_counter() - start

    session = EngineSession(instance)
    start = time.perf_counter()
    warm_outcomes = [
        _explain(correct, wrong, instance, session)
        for _, correct, wrong in workload
    ]
    warm_s = time.perf_counter() - start

    assert cold_outcomes == warm_outcomes, "warm caching must not change grades"
    info = session.cache_info()
    return {
        "total_tuples": instance.total_size(),
        "explains": len(workload),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_warm": cold_s / warm_s,
        "result_hits": info["result_hits"],
        "plan_hits": info["plan_hits"],
    }


def test_explanation_mode_is_faster_warm_than_cold(benchmark=None):
    if benchmark is not None:
        result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
        benchmark.extra_info["result"] = result
    else:  # plain pytest without pytest-benchmark
        result = run_benchmark()
    assert result["explains"] >= 20
    assert result["result_hits"] > 0, "provenance work must hit the session memo"
    assert result["speedup_warm"] > 1.1, result


def main() -> None:
    result = run_benchmark()
    print(
        f"explanation-mode grading, {result['total_tuples']} tuples, "
        f"{result['explains']} explains"
    )
    print(f"  cold sessions : {result['cold_s']:8.3f} s")
    print(
        f"  warm session  : {result['warm_s']:8.3f} s   "
        f"({result['speedup_warm']:.2f}x, {result['result_hits']} result-cache hits)"
    )
    from _summary import write_summary

    print(f"wrote {write_summary('explain_speedup', result)}")


if __name__ == "__main__":
    main()
