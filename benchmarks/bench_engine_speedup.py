"""Micro-benchmark: old tuple-at-a-time interpreter vs. the plan-based engine.

Models the evaluation load of a grading session on the TPC-H join workload
(``repro.workload.tpch_queries`` over ``repro.datagen.tpch`` at the
10K-tuple scale): for every (reference, submission) pair the system evaluates
both queries for the agreement check and again to pick the differing rows —
exactly what ``RATest.check`` does before any solver work.

Three configurations are timed:

* ``old``            — the historical interpreter (``ReferenceEvaluator``),
                       one fresh evaluator per evaluation, as ``evaluate()``
                       behaved before the engine existed;
* ``engine-cold``    — the engine with a fresh ``EngineSession`` per
                       evaluation (no cross-call caching: measures plan
                       compilation + optimized execution alone);
* ``engine-session`` — one ``EngineSession`` per instance, the way
                       ``RATest`` now evaluates (structural plan/result
                       caching across the whole grading session).

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_speedup.py``)
for a table, or through pytest
(``pytest benchmarks/bench_engine_speedup.py``) to assert the ≥2× session
speedup recorded in CHANGES.md.
"""

from __future__ import annotations

import time

from repro.datagen import tpch_instance
from repro.engine import EngineSession
from repro.engine.reference import ReferenceEvaluator
from repro.workload import tpch_queries

#: Scale factor putting the TPC-H-lite instance at the paper's 10K-tuple scale.
SCALE = 1.45


def _grading_pairs():
    pairs = []
    for query in tpch_queries():
        correct = query.correct_query
        for wrong in query.wrong_queries:
            pairs.append((query.key, correct, wrong))
    return pairs


def _grading_evaluations(pairs):
    """The evaluation sequence of a grading session over the pairs."""
    for _, correct, wrong in pairs:
        # Agreement check, then symmetric difference on disagreement.
        yield correct
        yield wrong
        yield correct
        yield wrong


def run_benchmark(scale: float = SCALE, seed: int = 0) -> dict:
    instance = tpch_instance(scale=scale, seed=seed)
    pairs = _grading_pairs()

    start = time.perf_counter()
    old_rows = [
        frozenset(ReferenceEvaluator(instance, {}).rows(query))
        for query in _grading_evaluations(pairs)
    ]
    old_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_rows = [
        EngineSession(instance).evaluate(query).rows
        for query in _grading_evaluations(pairs)
    ]
    cold_s = time.perf_counter() - start

    session = EngineSession(instance)
    start = time.perf_counter()
    session_rows = [
        session.evaluate(query).rows for query in _grading_evaluations(pairs)
    ]
    session_s = time.perf_counter() - start

    assert old_rows == cold_rows == session_rows  # identical semantics
    return {
        "total_tuples": instance.total_size(),
        "evaluations": 4 * len(pairs),
        "old_s": old_s,
        "engine_cold_s": cold_s,
        "engine_session_s": session_s,
        "speedup_cold": old_s / cold_s,
        "speedup_session": old_s / session_s,
    }


def test_engine_speedup_on_tpch(benchmark=None):
    if benchmark is not None:
        result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
        benchmark.extra_info["result"] = result
    else:  # plain pytest without pytest-benchmark
        result = run_benchmark()
    assert result["total_tuples"] >= 10_000
    assert result["speedup_session"] >= 2.0


def main() -> None:
    result = run_benchmark()
    print(f"TPC-H grading-session workload, {result['total_tuples']} tuples, "
          f"{result['evaluations']} evaluations")
    print(f"  old interpreter     : {result['old_s']:8.3f} s")
    print(f"  engine (cold)       : {result['engine_cold_s']:8.3f} s   "
          f"({result['speedup_cold']:.2f}x)")
    print(f"  engine (session)    : {result['engine_session_s']:8.3f} s   "
          f"({result['speedup_session']:.2f}x)")
    from _summary import write_summary

    print(f"wrote {write_summary('engine_speedup', result)}")


if __name__ == "__main__":
    main()
