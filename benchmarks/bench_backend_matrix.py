"""Backend matrix: Python plan engine vs. SQLite on the TPC-H grading workload.

Grades the five TPC-H benchmark queries (each: the reference plus its two
wrong variants, screening mode) against one generated TPC-H-lite instance on
both execution backends, and times four regimes per backend:

* ``cold eval``  — a fresh :class:`~repro.engine.session.EngineSession`
  evaluates all 15 workload queries once (for SQLite this includes loading
  the ``:memory:`` database and compiling every plan to SQL);
* ``warm eval``  — the session keeps its compiled/optimized plans but the
  result memo is cleared (:meth:`EngineSession.clear_cached_results`), so
  every query *executes* again; best of three passes.  This is the regime a
  grading daemon lives in — plans hot, data fresh — and the one the
  cost-based optimizer targets;
* ``memo eval``  — the same session evaluates again with the result memo
  intact (both backends serve these from the shared memo — memo cost is
  backend-independent by design);
* ``grading``    — a fresh :class:`~repro.api.service.GradingService` batch
  over the 15 (reference, submission) pairs.

The Python backend additionally runs with the cost-based pipeline disabled
(``LEGACY_OPTIMIZER_CONFIG`` — the pre-reordering, row-at-a-time engine) and
the benchmark *gates* on the optimized pipeline winning warm evaluation.

The benchmark also asserts the matrix property the differential fuzz suite
establishes statistically: identical row sets and bit-identical grades on
both backends and both optimizer configurations.  It does not assert a
backend winner — the point of the matrix is that backend choice is a
deployment decision, not a correctness one.

Run directly (``PYTHONPATH=src python benchmarks/bench_backend_matrix.py``)
for a table, or through pytest for the assertions.  ``REPRO_BENCH_SCALE``
overrides the TPC-H scale factor (default 1 ≈ 7k tuples).
"""

from __future__ import annotations

import os
import time

from repro.api import GradingService, SubmissionRequest
from repro.datagen import tpch_instance
from repro.engine import LEGACY_OPTIMIZER_CONFIG, EngineSession
from repro.workload import tpch_queries

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
WARM_PASSES = int(os.environ.get("REPRO_BENCH_WARM_PASSES", "3"))


def _workload_queries():
    queries = []
    for query in tpch_queries():
        queries.append(query.correct_query)
        queries.extend(query.wrong_queries)
    return queries


def _requests():
    requests = []
    for query in tpch_queries():
        for index, wrong in enumerate(query.wrong_texts):
            requests.append(
                SubmissionRequest(
                    query.correct_text,
                    wrong,
                    id=f"{query.key}/wrong{index}",
                    explain=False,
                )
            )
        requests.append(
            SubmissionRequest(
                query.correct_text, query.correct_text, id=f"{query.key}/ok", explain=False
            )
        )
    return requests


#: Tracing overhead gate: traced warm grading may cost at most 5% over
#: untraced, plus a small absolute epsilon so micro-second timing noise on
#: tiny scale factors cannot fail the gate spuriously.
TRACE_OVERHEAD_RATIO = 1.05
TRACE_OVERHEAD_EPSILON_S = 0.05


def _tracing_overhead(instance, requests) -> dict:
    """Best-of-N warm grading, untraced vs under a span with operator tracing.

    The traced regime is exactly what ``/v1/grade?trace=1`` exercises: an
    ambient span (so every ``grade.*`` phase records), ``operator_trace``
    enabled (so every evaluation runs through the :class:`PlanAnalyzer` and
    emits per-operator spans).  The tracer has no store or observer — spans
    are built and dropped, which is the marginal cost being measured.
    """
    from repro.obs.trace import Tracer, operator_trace

    service = GradingService.for_instance(instance, name="tpch")
    handle = service.handle_for(service.default_dataset, service.default_seed)

    def grading_pass() -> float:
        handle.session.clear_cached_results()
        start = time.perf_counter()
        for request in requests:
            service.submit(request)
        return time.perf_counter() - start

    grading_pass()  # warm plans and sessions once, untimed
    tracer = Tracer("bench")
    untraced = traced = float("inf")
    # Interleave the regimes (untraced, traced, untraced, ...) so slow drift
    # on the host — thermal throttling, a background compaction — lands on
    # both sides instead of biasing whichever regime runs last.
    for _ in range(max(2, WARM_PASSES * 2)):
        untraced = min(untraced, grading_pass())
        with tracer.span("bench.grade"), operator_trace(True):
            traced = min(traced, grading_pass())
    return {
        "untraced_warm_grading_s": untraced,
        "traced_warm_grading_s": traced,
        "tracing_overhead": traced / untraced if untraced > 0 else 1.0,
    }


def _warm_eval_seconds(session: EngineSession, queries, passes: int = WARM_PASSES) -> float:
    """Best-of-``passes`` re-execution time with plans hot, result memos cold."""
    best = float("inf")
    for _ in range(max(1, passes)):
        session.clear_cached_results()
        start = time.perf_counter()
        for query in queries:
            session.evaluate(query)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(seed: int = 7) -> dict:
    instance = tpch_instance(SCALE, seed=seed)
    queries = _workload_queries()
    requests = _requests()
    result: dict = {"total_tuples": instance.total_size(), "queries": len(queries)}

    row_sets: dict[str, list] = {}
    for backend in ("python", "sqlite"):
        session = EngineSession(instance, backend=backend)
        start = time.perf_counter()
        row_sets[backend] = [session.evaluate(q).rows for q in queries]
        result[f"{backend}_cold_s"] = time.perf_counter() - start
        result[f"{backend}_warm_s"] = _warm_eval_seconds(session, queries)
        start = time.perf_counter()
        for query in queries:
            session.evaluate(query)
        result[f"{backend}_memo_s"] = time.perf_counter() - start

        service = GradingService.for_instance(instance, name="tpch", backend=backend)
        start = time.perf_counter()
        graded = service.submit_batch(requests, workers=1)
        result[f"{backend}_grading_s"] = time.perf_counter() - start
        result[f"{backend}_grades"] = [
            g.to_dict(include_timings=False) for g in graded
        ]
        if backend == "sqlite":
            stats = session.stats
            result["sqlite_statements"] = stats["sqlite_statements"]
            result["sqlite_fallbacks"] = stats["sqlite_fallbacks"]

    # The pre-cost-based-optimizer engine: no reordering, no semijoins, no
    # columnar batches.  Its warm time is the baseline the pipeline must beat.
    legacy = EngineSession(instance, config=LEGACY_OPTIMIZER_CONFIG)
    row_sets["legacy"] = [legacy.evaluate(q).rows for q in queries]
    result["legacy_warm_s"] = _warm_eval_seconds(legacy, queries)

    assert row_sets["python"] == row_sets["sqlite"], "backends disagree on rows"
    assert row_sets["python"] == row_sets["legacy"], (
        "optimizer configurations disagree on rows"
    )
    assert result["python_grades"] == result["sqlite_grades"], (
        "backends disagree on grades"
    )
    result["wrong"] = sum(1 for g in result["python_grades"] if not g["correct"])
    result["warm_speedup"] = result["legacy_warm_s"] / result["python_warm_s"]
    # Gate: the cost-based + columnar pipeline must win warm Python eval
    # against the pre-pipeline engine on the course workload.  Enforced here
    # (not only in the pytest wrapper) so the CI smoke invocation gates too.
    assert result["python_warm_s"] < result["legacy_warm_s"], (
        f"optimized warm eval ({result['python_warm_s']:.3f}s) lost to the "
        f"legacy engine ({result['legacy_warm_s']:.3f}s)"
    )

    result.update(_tracing_overhead(instance, requests))
    # Gate: per-request tracing must stay cheap enough to leave on-demand
    # (?trace=1) tracing viable on a production daemon.
    assert result["traced_warm_grading_s"] <= (
        result["untraced_warm_grading_s"] * TRACE_OVERHEAD_RATIO
        + TRACE_OVERHEAD_EPSILON_S
    ), (
        f"traced warm grading ({result['traced_warm_grading_s']:.3f}s) exceeds "
        f"{TRACE_OVERHEAD_RATIO:.0%} of untraced "
        f"({result['untraced_warm_grading_s']:.3f}s)"
    )
    return result


def test_backend_matrix(benchmark=None):
    if benchmark is not None:
        result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
        benchmark.extra_info["result"] = result
    else:  # plain pytest without pytest-benchmark
        result = run_benchmark()
    # The workload must actually run on SQLite, not fall back wholesale.
    assert result["sqlite_statements"] > 0
    assert result["sqlite_fallbacks"] == 0
    assert result["wrong"] == 10  # two wrong variants per TPC-H query
    # run_benchmark itself gates warm optimized < warm legacy.
    assert result["warm_speedup"] > 1.0


def main() -> None:
    result = run_benchmark()
    print(
        f"TPC-H grading workload, scale {SCALE} "
        f"({result['total_tuples']} tuples, {result['queries']} queries, "
        f"{result['wrong']} wrong submissions)"
    )
    print(f"{'regime':<14} {'python':>10} {'sqlite':>10}")
    for regime in ("cold", "warm", "memo", "grading"):
        py = result[f"python_{regime}_s"]
        sq = result[f"sqlite_{regime}_s"]
        print(f"{regime + ' eval':<14} {py:>9.3f}s {sq:>9.3f}s")
    print(
        f"warm python vs legacy engine: {result['python_warm_s']:.3f}s vs "
        f"{result['legacy_warm_s']:.3f}s ({result['warm_speedup']:.2f}x)"
    )
    print(
        f"sqlite executed {result['sqlite_statements']} statements, "
        f"{result['sqlite_fallbacks']} fallbacks; grades bit-identical across backends"
    )
    print(
        f"tracing overhead on warm grading: {result['traced_warm_grading_s']:.3f}s "
        f"traced vs {result['untraced_warm_grading_s']:.3f}s untraced "
        f"({result['tracing_overhead']:.2f}x, gate {TRACE_OVERHEAD_RATIO:.2f}x)"
    )
    from _summary import write_summary

    summary = {k: v for k, v in result.items() if not k.endswith("_grades")}
    print(f"wrote {write_summary('backend_matrix', summary)}")


if __name__ == "__main__":
    main()
