"""Benchmark regenerating Table 4: SCP (Basic) vs SWP (Optσ)."""

from conftest import attach_rows, run_once

from repro.experiments import scp_vs_swp_experiment


def test_table4_scp_vs_swp(benchmark, profile):
    result = run_once(benchmark, scp_vs_swp_experiment, profile)
    attach_rows(benchmark, result)
    basic, optsigma = result.rows
    # Paper's shape: Optσ is faster and returns counterexamples of the same size.
    assert optsigma["mean_runtime_s"] <= basic["mean_runtime_s"]
    assert abs(optsigma["mean_counterexample_size"] - basic["mean_counterexample_size"]) <= 0.5
