"""Machine-readable benchmark summaries: ``BENCH_<name>.json`` files.

Every benchmark's ``main()`` calls :func:`write_summary` with its result
dict, so CI (and anyone bisecting a regression locally) gets a structured
artifact next to the human-readable table instead of having to scrape
stdout.  Files land in ``$REPRO_BENCH_OUT`` when set, else the current
working directory.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Mapping


def write_summary(name: str, result: Mapping[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    The payload wraps the benchmark's own result dict with reproducibility
    context: wall-clock timestamp, Python/platform versions, and every
    ``REPRO_BENCH_*`` environment knob in effect.  Values that are not JSON
    types are serialized with ``repr`` rather than failing the run — a
    benchmark must never die on its reporting step.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": name,
        "created_at_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_BENCH_")
        },
        "result": dict(result),
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n")
    return path


__all__ = ["write_summary"]
