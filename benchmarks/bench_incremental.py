"""Micro-benchmark: delta-maintained re-grading vs. cold re-grading.

Models the instructor-edits-the-dataset loop on a 200-student course: the
grading daemon has already screened the whole class's submissions (one warm
:class:`EngineSession`, every memoized subplan hot), then a single tuple of
one relation is edited — a grade correction.  Two ways to re-screen the full
workload are timed:

* ``delta`` — the *same* warm session: the mutation log is propagated
  through the memoized subplan results (``repro.engine.delta``), so
  untouched subtrees survive verbatim and touched ones are patched with
  work proportional to the delta;
* ``cold``  — a fresh ``EngineSession`` on the mutated instance, the
  pre-delta behavior (wholesale invalidation on any version bump).

The workload is the realistic shape of a class: per question, the reference
solution plus two dozen superficially-different submissions (extra join
hops, overly strict grade filters — the phrasings students actually produce)
plus the handwritten wrong submissions from ``repro.workload.course``.  The
timed screen is what a screening pass fundamentally is — the full row set of
every submission compared against its reference — and both re-screens must
be bit-identical, with the delta re-grade winning by at least 3x wall-clock.
A separate untimed pass re-grades the wrong submissions *with* counterexample
explanations through the full service envelope and checks those are
bit-identical too.

A second timed section covers the solver layer end to end: provenance CNFs
are keyed by query structure modulo renaming, so a warm session that has
already explained a wrong submission explains a renamed-duplicate
resubmission faster than a cold session explains it from scratch — the
cached post-Tseitin clause set warm-starts the ``SATSolver`` instead of
re-encoding and re-converging on a first model.

Run directly (``PYTHONPATH=src python benchmarks/bench_incremental.py``) for
a table, or through pytest to assert the gates.
"""

from __future__ import annotations

import time

from repro.api.serialization import outcome_to_dict
from repro.api.service import grade_queries
from repro.core.optsigma import smallest_witness_optsigma
from repro.datagen.university import university_instance, university_schema
from repro.engine import EngineSession
from repro.parser import parse_query
from repro.workload.course import course_questions

NUM_STUDENTS = 200
VARIANTS_PER_QUESTION = 24
REUSE_ROUNDS = 10


def _submission_variants(correct_text: str, count: int) -> list[str]:
    """Superficially different phrasings of one reference solution.

    Each variant re-joins the solution with a freshly renamed ``Registration``
    copy under a distinct predicate, so every submission compiles to a
    distinct plan (distinct hash-join work for a cold session) while staying
    semantically equal — or, for the strict grade filters, a near-miss.
    """
    schema = university_schema()
    attrs = parse_query(correct_text).output_schema(schema).attribute_names
    join_attr = "course" if "course" in attrs else "name"
    projection = ", ".join(attrs)
    variants = []
    for index in range(count):
        variants.append(
            f"\\project_{{{projection}}} (({correct_text}) "
            f"\\join_{{{join_attr} = x.{join_attr} and x.grade > {90 + index % 10}}} "
            f"\\rename_{{prefix: x}} Registration)"
        )
    return variants


def _workload():
    """(reference, submission) expression pairs for the whole class."""
    pairs = []
    wrong_pairs = []
    for question in course_questions():
        reference = parse_query(question.correct_text)
        pairs.append((reference, reference))
        for text in _submission_variants(question.correct_text, VARIANTS_PER_QUESTION):
            pairs.append((reference, parse_query(text)))
        for text in question.wrong_texts:
            wrong = parse_query(text)
            pairs.append((reference, wrong))
            wrong_pairs.append((reference, wrong))
    return pairs, wrong_pairs


def _screen_all(session: EngineSession, pairs) -> list[tuple]:
    """Screening-mode verdicts plus the full row set of every submission."""
    out = []
    for reference, submission in pairs:
        rows = session.evaluate(submission).rows
        out.append((rows == session.evaluate(reference).rows, rows))
    return out


def _explain_all(session: EngineSession, pairs) -> list[dict]:
    return [
        outcome_to_dict(grade_queries(session, ref, sub), include_timings=False)
        for ref, sub in pairs
    ]


def _single_tuple_edit(instance) -> str:
    """Nudge one registration's grade; returns the edited tid."""
    registrations = instance.relation("Registration")
    tid = registrations.tids()[0]
    name, course, dept, grade = registrations.row(tid)
    registrations.update(
        tid, (name, course, dept, grade - 1 if grade > 40 else grade + 1)
    )
    return tid


def run_benchmark(num_students: int = NUM_STUDENTS, seed: int = 0) -> dict:
    instance = university_instance(num_students, seed=seed)
    pairs, wrong_pairs = _workload()

    warm = EngineSession(instance)
    _screen_all(warm, pairs)  # the already-graded class: every memo hot

    edited_tid = _single_tuple_edit(instance)

    start = time.perf_counter()
    delta_grades = _screen_all(warm, pairs)
    delta_s = time.perf_counter() - start

    cold = EngineSession(instance)
    start = time.perf_counter()
    cold_grades = _screen_all(cold, pairs)
    cold_s = time.perf_counter() - start

    # Untimed differential on the explanation path: counterexamples from the
    # warm session (clause cache hot, provenance recomputed where dropped)
    # must match a from-scratch session bit for bit.
    explain_identical = _explain_all(warm, wrong_pairs) == _explain_all(
        EngineSession(instance), wrong_pairs
    )

    stats = warm.cache_info()
    return {
        "students": num_students,
        "total_tuples": instance.total_size(),
        "submissions": len(pairs),
        "edited_tid": edited_tid,
        "delta_regrade_s": delta_s,
        "cold_regrade_s": cold_s,
        "speedup": cold_s / delta_s,
        "bit_identical": delta_grades == cold_grades,
        "explain_bit_identical": explain_identical,
        "delta_maintained": stats["delta_maintained"],
        "delta_patched": stats["delta_patched"],
        "delta_dropped": stats["delta_dropped"],
        "delta_fallback": stats["delta_fallback"],
        "invalidations": stats["invalidations"],
        **_clause_reuse(instance),
    }


def _clause_reuse(instance) -> dict:
    """Explaining a renamed-duplicate resubmission: warm session vs. scratch.

    Each round, a warm session that has already explained the original wrong
    submission (its provenance CNF sits in the clause cache, keyed modulo
    renaming) re-explains a renamed duplicate — timed against a cold session
    explaining the same renamed duplicate from nothing.  Fresh sessions every
    round keep both sides honest: the warm side wins only through the clause
    cache plus surviving memos, never through a memoized final answer.
    """
    question = course_questions()[0]
    reference = parse_query(question.correct_text)
    wrong_text = question.wrong_texts[0]
    wrong = parse_query(wrong_text)
    renamed = parse_query(
        "\\rename_{who -> name} (\\rename_{name -> who} (" + wrong_text + "))"
    )

    warm_s = scratch_s = 0.0
    hits = 0
    identical = True
    for _ in range(REUSE_ROUNDS):
        warm = EngineSession(instance)
        smallest_witness_optsigma(reference, wrong, instance, session=warm)
        start = time.perf_counter()
        reused = smallest_witness_optsigma(reference, renamed, instance, session=warm)
        warm_s += time.perf_counter() - start
        hits += warm.clause_cache.hits

        cold = EngineSession(instance)
        start = time.perf_counter()
        scratch = smallest_witness_optsigma(reference, renamed, instance, session=cold)
        scratch_s += time.perf_counter() - start

        identical = identical and (
            reused.distinguishing_row == scratch.distinguishing_row
            and sorted(reused.tids) == sorted(scratch.tids)
        )

    return {
        "reuse_rounds": REUSE_ROUNDS,
        "scratch_solve_s": scratch_s,
        "reuse_solve_s": warm_s,
        "reuse_speedup": scratch_s / warm_s,
        "reuse_identical": identical,
        "clause_cache_hits": hits,
    }


def test_incremental_regrade_beats_cold(benchmark=None):
    if benchmark is not None:
        result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
        benchmark.extra_info["result"] = result
    else:  # plain pytest without pytest-benchmark
        result = run_benchmark()
    assert result["bit_identical"], "delta re-grade diverged from cold re-grade"
    assert result["explain_bit_identical"], "explanations diverged after the edit"
    assert result["speedup"] >= 3.0, result
    assert result["delta_maintained"] + result["delta_patched"] > 0, result
    assert result["delta_fallback"] == 0, result
    assert result["invalidations"] == 0, result
    assert result["reuse_identical"], result
    assert result["clause_cache_hits"] >= REUSE_ROUNDS, result
    assert result["reuse_speedup"] > 1.0, result


def main() -> None:
    result = run_benchmark()
    print(f"incremental re-grade, {result['students']} students "
          f"({result['total_tuples']} tuples), {result['submissions']} submissions, "
          f"single-tuple edit {result['edited_tid']}")
    print(f"  cold re-grade  : {result['cold_regrade_s']:8.3f} s")
    print(f"  delta re-grade : {result['delta_regrade_s']:8.3f} s   "
          f"({result['speedup']:.2f}x, bit-identical={result['bit_identical']}, "
          f"explain-identical={result['explain_bit_identical']})")
    print(f"  memo counters  : maintained={result['delta_maintained']} "
          f"patched={result['delta_patched']} dropped={result['delta_dropped']} "
          f"fallback={result['delta_fallback']}")
    print(f"clause reuse, {result['reuse_rounds']} renamed-duplicate explanations")
    print(f"  from scratch   : {result['scratch_solve_s']:8.3f} s")
    print(f"  warm clauses   : {result['reuse_solve_s']:8.3f} s   "
          f"({result['reuse_speedup']:.2f}x, identical={result['reuse_identical']}, "
          f"hits={result['clause_cache_hits']})")
    from _summary import write_summary

    print(f"wrote {write_summary('incremental', result)}")


if __name__ == "__main__":
    main()
