"""Benchmark regenerating Figure 6: TPC-H aggregate queries, Agg-Basic vs Agg-Opt."""

from conftest import attach_rows, run_once

from repro.experiments import tpch_experiment


def test_figure6_tpch(benchmark, profile):
    result = run_once(benchmark, tpch_experiment, profile)
    attach_rows(benchmark, result)
    by_key = {}
    for row in result.rows:
        by_key.setdefault(row["query"], {})[row["algorithm"]] = row
    assert set(by_key) == {"Q4", "Q16", "Q18", "Q21", "Q21-S"}
    # Paper's shape: the heuristic stays interactive on every query; the full
    # aggregate-provenance approach struggles (budget exhausted) on the
    # large-group queries Q4 / Q21 / Q21-S.
    for key, rows in by_key.items():
        opt_row = rows["Agg-Opt"]
        basic_row = rows["Agg-Basic"]
        if opt_row["total_s"] is not None and basic_row["total_s"] is not None:
            assert opt_row["solver_s"] <= basic_row["solver_s"] * 3 + 1.0
    exhausted = [
        key
        for key, rows in by_key.items()
        if "budget exhausted" in (rows["Agg-Basic"]["status"] or "")
    ]
    assert any(key in exhausted for key in ("Q4", "Q21", "Q21-S"))
