"""Grading-daemon load: HTTP equivalence, persistent-store speedup, throughput.

The first end-to-end *traffic* number in the repo: the full course workload
(a simulated class of ``CLASS_SIZE`` students × 8 questions, mistakes
repeating across students as in §7.1) graded through the network path —
client → HTTP frontend → worker pool → engine → SQLite result store — under
closed-loop load at 1/4/16/64 concurrent clients.

Three claims are checked, not just timed:

1. **Equivalence** — every grade served over HTTP is bit-identical (timings
   aside) to in-process :class:`~repro.api.GradingService` grading of the
   same workload.
2. **Warm-store speedup** — re-submitting the identical 200-submission batch
   against a warm persistent store is ≥ 5× faster than the cold server run
   that computed it (in practice orders of magnitude).
3. **Restart durability** — the warm numbers come from the *store*, not
   process memory: each concurrency level's warm pass runs against a server
   whose workers never graded those submissions.

Run directly::

    PYTHONPATH=src python benchmarks/bench_server_load.py

Environment knobs: ``REPRO_BENCH_CLASS_SIZE`` (default 25 → 200 submissions),
``REPRO_BENCH_CONCURRENCY`` (comma list, default ``1,4,16,64``),
``REPRO_BENCH_SERVER_WORKERS`` (default 2).
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.api import GradingService, SubmissionRequest
from repro.server import GradingClient, GradingServer, ServerConfig
from repro.workload import course_questions

DATASET = "university:40"
SEED = 2018
CLASS_SIZE = int(os.environ.get("REPRO_BENCH_CLASS_SIZE", "25"))
CONCURRENCY = tuple(
    int(c) for c in os.environ.get("REPRO_BENCH_CONCURRENCY", "1,4,16,64").split(",")
)
SERVER_WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "2"))


def workload(seed: int = 7) -> list[SubmissionRequest]:
    """CLASS_SIZE students × 8 questions; mistakes repeat across students."""
    rng = random.Random(seed)
    requests = []
    for student in range(CLASS_SIZE):
        for question in course_questions():
            candidates = (question.correct_text, *question.wrong_texts)
            submitted = question.correct_text if rng.random() < 0.5 else rng.choice(candidates)
            requests.append(
                SubmissionRequest(
                    question.correct_text,
                    submitted,
                    id=f"student{student}/{question.key}",
                )
            )
    return requests


def boot(store_path: Path) -> tuple[GradingServer, str]:
    server = GradingServer(
        ServerConfig(
            workers=SERVER_WORKERS,
            default_dataset=DATASET,
            default_seed=SEED,
            store_path=store_path,
            warm_datasets=(DATASET,),
            max_queue=256,
        )
    ).start()
    url = f"http://127.0.0.1:{server.port}"
    GradingClient(url).wait_until_healthy(60.0)
    return server, url


def strip(envelope: dict) -> dict:
    """The deterministic part of a server grade envelope."""
    return {k: v for k, v in envelope.items() if k not in ("store", "wall_time")}


def closed_loop(url: str, requests: list[SubmissionRequest], clients: int) -> tuple[float, list[dict]]:
    """Each client thread pulls from a shared queue and grades one-by-one."""
    work = list(enumerate(requests))
    results: list[dict | None] = [None] * len(requests)
    lock = threading.Lock()

    def run_client() -> None:
        with GradingClient(url) as client:
            while True:
                with lock:
                    if not work:
                        return
                    index, request = work.pop()
                results[index] = client.grade(request)

    threads = [threading.Thread(target=run_client) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert all(r is not None for r in results)
    return elapsed, results  # type: ignore[return-value]


def run_benchmark() -> dict:
    requests = workload()
    print(
        f"course workload: {len(requests)} submissions "
        f"({CLASS_SIZE} students x {len(course_questions())} questions) "
        f"on {DATASET}, server workers={SERVER_WORKERS}"
    )

    # In-process baseline: the batch API the server wraps.
    service = GradingService(default_dataset=DATASET, default_seed=SEED)
    start = time.perf_counter()
    baseline = service.submit_batch(requests, workers=4)
    in_process_time = time.perf_counter() - start
    expected = [graded.to_dict(include_timings=False) for graded in baseline]
    print(
        f"in-process submit_batch: {in_process_time:.3f}s "
        f"({len(requests) / in_process_time:.0f} subs/s)"
    )

    rows = []
    equivalence_checked = False
    with tempfile.TemporaryDirectory(prefix="repro-bench-server") as tmp:
        # -- batch endpoint: cold vs warm store (fresh store, fresh server) --
        server, url = boot(Path(tmp) / "batch-store.sqlite3")
        try:
            with GradingClient(url) as client:
                start = time.perf_counter()
                cold = client.grade_batch(requests)
                cold_time = time.perf_counter() - start
                assert [strip(e) for e in cold] == expected, (
                    "HTTP grades differ from in-process grading"
                )
                equivalence_checked = True

                start = time.perf_counter()
                warm = client.grade_batch(requests)
                warm_time = time.perf_counter() - start
                assert [strip(e) for e in warm] == expected
                hits = sum(1 for e in warm if e["store"] == "hit")
        finally:
            server.shutdown()
        speedup = cold_time / warm_time
        print(
            f"grade_batch over HTTP: cold {cold_time:.3f}s "
            f"({len(requests) / cold_time:.0f} subs/s), "
            f"warm {warm_time:.3f}s ({len(requests) / warm_time:.0f} subs/s), "
            f"speedup {speedup:.1f}x, warm store hits {hits}/{len(requests)}"
        )
        assert hits == len(requests), "warm batch should be served fully from the store"
        assert speedup >= 5.0, (
            f"warm store must be >=5x faster than a cold server, got {speedup:.1f}x"
        )

        # -- closed-loop /v1/grade at increasing client concurrency ----------
        print(f"\n{'clients':>8} {'cold s':>8} {'cold sub/s':>11} {'warm s':>8} {'warm sub/s':>11} {'hits':>6}")
        for clients in CONCURRENCY:
            store = Path(tmp) / f"loop-store-{clients}.sqlite3"
            server, url = boot(store)
            try:
                cold_elapsed, cold_results = closed_loop(url, requests, clients)
                assert [strip(e) for e in cold_results] == expected
            finally:
                server.shutdown()
            # Restart on the same store: the warm pass measures durability,
            # not worker memory.
            server, url = boot(store)
            try:
                warm_elapsed, warm_results = closed_loop(url, requests, clients)
                assert [strip(e) for e in warm_results] == expected
                warm_hits = sum(1 for e in warm_results if e["store"] == "hit")
            finally:
                server.shutdown()
            assert warm_hits >= 0.9 * len(requests), (
                f"expected >=90% store hits after restart, got {warm_hits}"
            )
            rows.append(
                {
                    "clients": clients,
                    "cold_time": cold_elapsed,
                    "cold_throughput": len(requests) / cold_elapsed,
                    "warm_time": warm_elapsed,
                    "warm_throughput": len(requests) / warm_elapsed,
                    "warm_hits": warm_hits,
                }
            )
            print(
                f"{clients:>8} {cold_elapsed:>8.3f} {len(requests) / cold_elapsed:>11.0f} "
                f"{warm_elapsed:>8.3f} {len(requests) / warm_elapsed:>11.0f} "
                f"{warm_hits:>6}"
            )

    assert equivalence_checked
    return {"batch_speedup": speedup, "rows": rows}


def test_server_load_smoke():
    """Pytest entry point (kept tiny: one concurrency level)."""
    global CLASS_SIZE, CONCURRENCY
    original = CLASS_SIZE, CONCURRENCY
    CLASS_SIZE, CONCURRENCY = 6, (4,)
    try:
        results = run_benchmark()
        assert results["batch_speedup"] >= 5.0
    finally:
        CLASS_SIZE, CONCURRENCY = original


if __name__ == "__main__":
    _result = run_benchmark()
    from _summary import write_summary

    print(f"wrote {write_summary('server_load', _result)}")
