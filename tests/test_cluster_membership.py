"""State-machine tests for cluster membership (injected probes, no sockets)."""

from __future__ import annotations

import pytest

from repro.cluster.membership import (
    ALIVE,
    DOWN,
    SUSPECT,
    ClusterMembership,
    parse_peer_specs,
)
from repro.errors import ReproError

PEERS = {
    "shard-0": "http://127.0.0.1:9000",
    "shard-1": "http://127.0.0.1:9001",
    "shard-2": "http://127.0.0.1:9002",
}


def make(probe=None, **kwargs):
    defaults = dict(suspect_after=1, down_after=3, probe=probe or (lambda url: None))
    defaults.update(kwargs)
    return ClusterMembership("shard-0", PEERS, **defaults)


def test_parse_peer_specs() -> None:
    parsed = parse_peer_specs(["a=http://h:1", "b=http://h:2"])
    assert parsed == {"a": "http://h:1", "b": "http://h:2"}
    with pytest.raises(ReproError):
        parse_peer_specs(["missing-equals"])
    with pytest.raises(ReproError):
        parse_peer_specs(["a=http://h:1", "a=http://h:2"])
    with pytest.raises(ReproError):
        parse_peer_specs(["=http://h:1"])


def test_self_must_be_in_peer_map() -> None:
    with pytest.raises(ReproError):
        ClusterMembership("not-there", PEERS)


def test_failure_escalation_and_recovery() -> None:
    membership = make()
    assert membership.states()["shard-1"] == ALIVE
    membership.report_failure("shard-1")
    assert membership.states()["shard-1"] == SUSPECT
    membership.report_failure("shard-1")
    assert membership.states()["shard-1"] == SUSPECT
    membership.report_failure("shard-1")
    assert membership.states()["shard-1"] == DOWN
    assert "shard-1" not in membership.live_peers()
    # One good probe brings it straight back, slice restored.
    membership.report_alive("shard-1")
    assert membership.states()["shard-1"] == ALIVE
    assert "shard-1" in membership.live_peers()


def test_down_peer_loses_ring_slice_to_survivors() -> None:
    membership = make()
    owned_by_1 = [
        seed for seed in range(300)
        if membership.owner("university:40", seed) == "shard-1"
    ]
    assert owned_by_1  # with 300 seeds every peer owns some
    for _ in range(3):
        membership.report_failure("shard-1")
    for seed in owned_by_1:
        assert membership.owner("university:40", seed) != "shard-1"
    # Static placement is unchanged: the store tier still knows where the
    # rows *should* live.
    assert any(
        membership.static_owner("university:40", seed) == "shard-1"
        for seed in owned_by_1
    )


def test_self_never_goes_down() -> None:
    membership = make()
    for _ in range(10):
        membership.report_failure("shard-0")
    assert membership.states()["shard-0"] == ALIVE


def test_probe_once_feeds_state_machine() -> None:
    failing = {"http://127.0.0.1:9002"}

    def probe(url: str) -> None:
        if url in failing:
            raise ConnectionError("unreachable")

    membership = make(probe=probe, down_after=2)
    membership.probe_once()
    assert membership.states() == {"shard-0": ALIVE, "shard-1": ALIVE, "shard-2": SUSPECT}
    membership.probe_once()
    assert membership.states()["shard-2"] == DOWN
    failing.clear()
    membership.probe_once()
    assert membership.states()["shard-2"] == ALIVE


def test_heartbeat_thread_detects_dead_port() -> None:
    """End-to-end over real sockets: a peer URL nobody listens on goes down."""
    import socket

    # Reserve a port and close it so nothing answers there.
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        dead_port = sock.getsockname()[1]
    peers = {
        "shard-0": "http://127.0.0.1:1",  # never probed (self)
        "shard-1": f"http://127.0.0.1:{dead_port}",
    }
    membership = ClusterMembership(
        "shard-0",
        peers,
        heartbeat_interval=0.05,
        suspect_after=1,
        down_after=2,
        probe_timeout=0.5,
    )
    membership.start()
    try:
        deadline = 10.0
        import time

        start = time.monotonic()
        while membership.states()["shard-1"] != DOWN:
            assert time.monotonic() - start < deadline, membership.states()
            time.sleep(0.05)
    finally:
        membership.stop()
    assert membership.live_peers() == ["shard-0"]


def test_store_probe_candidates_skip_self_and_down() -> None:
    membership = make()
    for dataset, seed in [("university:40", s) for s in range(50)]:
        candidates = membership.store_probe_candidates(dataset, seed, 2)
        assert "shard-0" not in candidates
        assert len(candidates) <= 2
    for _ in range(3):
        membership.report_failure("shard-1")
    for seed in range(50):
        assert "shard-1" not in membership.store_probe_candidates("university:40", seed, 3)


def test_describe_is_wire_complete() -> None:
    membership = make()
    membership.report_failure("shard-2")
    payload = membership.describe()
    assert payload["name"] == "shard-0"
    assert payload["virtual_nodes"] == 64
    assert set(payload["peers"]) == set(PEERS)
    assert payload["peers"]["shard-0"]["self"] is True
    assert payload["peers"]["shard-2"]["state"] == SUSPECT
    assert payload["peers"]["shard-2"]["failures"] == 1
    assert sorted(payload["live"]) == sorted(PEERS)  # suspect stays live
