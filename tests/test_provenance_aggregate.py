"""Tests for aggregate provenance (§5, Table 2 of the paper)."""

import pytest

from repro.datagen import toy_university_instance, university_schema
from repro.errors import NotApplicableError
from repro.parser import parse_query
from repro.provenance.aggregate import (
    AggComparison,
    NumConst,
    NumParam,
    SymbolicAggregate,
    ValuesDiffer,
    annotate_aggregate_query,
    decompose_aggregate_query,
    is_aggregate_at_top,
)
from repro.provenance.boolexpr import assignment_from_true_set, var
from repro.ra import AggregateFunction

DB = university_schema()

# The queries of Example 4 / Example 5.
_Q1_AVG = """
\\aggr_{group: s.name; avg(r.grade) -> avg_grade} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name and r.dept = 'CS'}
  \\rename_{prefix: r} Registration
)
"""
_Q2_AVG = """
\\aggr_{group: s.name; avg(r.grade) -> avg_grade} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name}
  \\rename_{prefix: r} Registration
)
"""
_Q1_HAVING = "\\select_{n >= 3} \\aggr_{group: s.name; avg(r.grade) -> avg_grade, count(*) -> n} (" \
    "\\rename_{prefix: s} Student \\join_{s.name = r.name and r.dept = 'CS'} \\rename_{prefix: r} Registration)"
_Q2_HAVING = "\\select_{n >= 3} \\aggr_{group: s.name; avg(r.grade) -> avg_grade, count(*) -> n} (" \
    "\\rename_{prefix: s} Student \\join_{s.name = r.name} \\rename_{prefix: r} Registration)"


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


class TestSymbolicAggregates:
    def _avg(self):
        return SymbolicAggregate(
            AggregateFunction.AVG,
            ((var("t4"), 100), (var("t5"), 75), (var("t6"), 95)),
        )

    def test_avg_depends_on_kept_tuples(self):
        expr = self._avg()
        assert expr.evaluate(assignment_from_true_set({"t4", "t5"}), {}) == 87.5
        assert expr.evaluate(assignment_from_true_set({"t4"}), {}) == 100
        assert expr.evaluate(assignment_from_true_set(set()), {}) is None

    def test_count_of_empty_group_is_zero(self):
        expr = SymbolicAggregate(AggregateFunction.COUNT, ((var("t4"), 1),))
        assert expr.evaluate({}, {}) == 0

    def test_sum_min_max(self):
        contributions = ((var("a"), 5), (var("b"), 2))
        assert SymbolicAggregate(AggregateFunction.SUM, contributions).evaluate(
            assignment_from_true_set({"a", "b"}), {}
        ) == 7
        assert SymbolicAggregate(AggregateFunction.MIN, contributions).evaluate(
            assignment_from_true_set({"a", "b"}), {}
        ) == 2
        assert SymbolicAggregate(AggregateFunction.MAX, contributions).evaluate(
            assignment_from_true_set({"a"}), {}
        ) == 5

    def test_comparison_with_null_is_false(self):
        comparison = AggComparison(">=", self._avg(), NumConst(50))
        assert not comparison.evaluate({}, {})

    def test_parameter_comparison(self):
        count = SymbolicAggregate(AggregateFunction.COUNT, ((var("t4"), 1), (var("t5"), 1)))
        comparison = AggComparison(">=", count, NumParam("numCS"))
        kept = assignment_from_true_set({"t4", "t5"})
        assert comparison.evaluate(kept, {"numCS": 2})
        assert not comparison.evaluate(kept, {"numCS": 3})

    def test_values_differ_semantics(self):
        left = SymbolicAggregate(AggregateFunction.AVG, ((var("a"), 10),))
        right = NumConst(10)
        differ = ValuesDiffer(left, right)
        assert differ.evaluate({}, {})  # NULL vs 10 are distinct
        assert not differ.evaluate(assignment_from_true_set({"a"}), {})


class TestDecomposition:
    def test_aggregate_at_top_accepted(self):
        assert is_aggregate_at_top(parse_query(_Q1_HAVING), DB)

    def test_non_aggregate_rejected(self):
        with pytest.raises(NotApplicableError):
            decompose_aggregate_query(parse_query("\\project_{name} Student"), DB)

    def test_nested_aggregate_rejected(self):
        nested = parse_query(
            "\\aggr_{group: name; count(*) -> m} \\aggr_{group: name, dept; count(*) -> n} Registration"
        )
        with pytest.raises(NotApplicableError):
            decompose_aggregate_query(nested, DB)

    def test_wrappers_collected_outermost_first(self):
        form = decompose_aggregate_query(parse_query(_Q1_HAVING), DB)
        assert len(form.wrappers) == 1
        assert form.group_by.group_by == ("s.name",)


class TestAggregateAnnotation:
    def test_example4_group_values(self, instance):
        annotation = annotate_aggregate_query(parse_query(_Q2_AVG), instance)
        assert annotation.key_columns == ("s.name",)
        assert annotation.value_columns == ("avg_grade",)
        mary = annotation.groups[("Mary",)]
        full = assignment_from_true_set(instance.all_tids())
        assert mary.outputs["avg_grade"].evaluate(full, {}) == 90
        # Dropping the ECON registration changes the average to 87.5.
        without_econ = assignment_from_true_set(instance.all_tids() - {"Registration:3"})
        assert mary.outputs["avg_grade"].evaluate(without_econ, {}) == 87.5

    def test_example5_having_condition(self, instance):
        annotation = annotate_aggregate_query(parse_query(_Q2_HAVING), instance)
        mary = annotation.groups[("Mary",)]
        full = assignment_from_true_set(instance.all_tids())
        assert mary.condition.evaluate(full, {})
        # With only two of Mary's registrations kept the HAVING count >= 3 fails.
        two_kept = assignment_from_true_set({"Student:1", "Registration:1", "Registration:2"})
        assert not mary.condition.evaluate(two_kept, {})

    def test_group_presence_requires_some_member(self, instance):
        annotation = annotate_aggregate_query(parse_query(_Q1_AVG), instance)
        john = annotation.groups[("John",)]
        assert not john.condition.evaluate(assignment_from_true_set({"Student:2"}), {})
        assert john.condition.evaluate(
            assignment_from_true_set({"Student:2", "Registration:4"}), {}
        )

    def test_parameterized_having(self, instance):
        query = parse_query(_Q2_HAVING.replace("n >= 3", "n >= @k"))
        annotation = annotate_aggregate_query(query, instance, {"k": 3})
        mary = annotation.groups[("Mary",)]
        two_kept = assignment_from_true_set({"Student:1", "Registration:1", "Registration:2"})
        assert not mary.condition.evaluate(two_kept, {"k": 3})
        assert mary.condition.evaluate(two_kept, {"k": 2})

    def test_matches_plain_evaluation_on_full_instance(self, instance):
        from repro.ra import evaluate

        query = parse_query(_Q1_HAVING)
        annotation = annotate_aggregate_query(query, instance)
        full = assignment_from_true_set(instance.all_tids())
        expected_keys = set()
        for row in evaluate(query, instance).rows:
            key_idx = [annotation.schema.index_of(c) for c in annotation.key_columns]
            expected_keys.add(tuple(row[i] for i in key_idx))
        satisfied_keys = {
            key for key, group in annotation.groups.items() if group.condition.evaluate(full, {})
        }
        assert satisfied_keys == expected_keys
