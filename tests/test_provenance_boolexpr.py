"""Tests for Boolean provenance expressions, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.provenance import (
    FALSE,
    TRUE,
    AndExpr,
    NotExpr,
    OrExpr,
    Var,
    assignment_from_true_set,
    band,
    bnot,
    bor,
    minimal_satisfying_subset,
    to_dnf,
    true_variables,
    var,
)

# -- random expression strategy ------------------------------------------------

_VARIABLES = [f"t{i}" for i in range(1, 7)]


def expressions(max_depth: int = 4, allow_negation: bool = True):
    leaf = st.sampled_from([Var(name) for name in _VARIABLES] + [TRUE, FALSE])

    def extend(children):
        options = [
            st.builds(lambda ops: band(*ops), st.lists(children, min_size=1, max_size=3)),
            st.builds(lambda ops: bor(*ops), st.lists(children, min_size=1, max_size=3)),
        ]
        if allow_negation:
            options.append(st.builds(bnot, children))
        return st.one_of(options)

    return st.recursive(leaf, extend, max_leaves=12)


assignments = st.sets(st.sampled_from(_VARIABLES), max_size=len(_VARIABLES))


class TestConstructors:
    def test_and_simplification(self):
        assert band(TRUE, var("a")) == var("a")
        assert band(FALSE, var("a")) == FALSE
        assert band() == TRUE

    def test_or_simplification(self):
        assert bor(FALSE, var("a")) == var("a")
        assert bor(TRUE, var("a")) == TRUE
        assert bor() == FALSE

    def test_flattening_and_dedup(self):
        expr = band(var("a"), band(var("b"), var("a")))
        assert isinstance(expr, AndExpr)
        assert len(expr.operands) == 2

    def test_double_negation(self):
        assert bnot(bnot(var("a"))) == var("a")
        assert bnot(TRUE) == FALSE

    def test_operator_overloads(self):
        expr = (var("a") & var("b")) | ~var("c")
        assert expr.variables() == {"a", "b", "c"}

    def test_paper_equation_1(self):
        # Prv(r2) = t1 t4 + t1 t5 = t1 (t4 + t5)
        expr = bor(band(var("t1"), var("t4")), band(var("t1"), var("t5")))
        assert expr.evaluate({"t1": True, "t4": True})
        assert expr.evaluate({"t1": True, "t5": True})
        assert not expr.evaluate({"t4": True, "t5": True})

    def test_size_metric(self):
        assert var("a").size() == 1
        assert band(var("a"), var("b")).size() == 3

    def test_is_positive(self):
        assert band(var("a"), bor(var("b"), var("c"))).is_positive()
        assert not band(var("a"), bnot(var("b"))).is_positive()


class TestEvaluation:
    def test_missing_variables_default_false(self):
        assert not var("a").evaluate({})
        assert bnot(var("a")).evaluate({})

    def test_assignment_helpers(self):
        assignment = assignment_from_true_set({"a", "b"})
        assert true_variables(assignment) == {"a", "b"}

    @given(expr=expressions(), assignment=assignments)
    @settings(max_examples=60, deadline=None)
    def test_de_morgan(self, expr, assignment):
        mapping = assignment_from_true_set(assignment)
        assert bnot(expr).evaluate(mapping) == (not expr.evaluate(mapping))

    @given(a=expressions(), b=expressions(), assignment=assignments)
    @settings(max_examples=60, deadline=None)
    def test_and_or_semantics(self, a, b, assignment):
        mapping = assignment_from_true_set(assignment)
        assert band(a, b).evaluate(mapping) == (a.evaluate(mapping) and b.evaluate(mapping))
        assert bor(a, b).evaluate(mapping) == (a.evaluate(mapping) or b.evaluate(mapping))


class TestDNF:
    def test_simple_dnf(self):
        expr = band(var("t1"), bor(var("t4"), var("t5")))
        minterms = to_dnf(expr)
        assert set(minterms) == {frozenset({"t1", "t4"}), frozenset({"t1", "t5"})}

    def test_absorption(self):
        # a + a b  ->  a
        expr = bor(var("a"), band(var("a"), var("b")))
        assert to_dnf(expr) == [frozenset({"a"})]

    def test_negation_rejected(self):
        with pytest.raises(SolverError):
            to_dnf(band(var("a"), bnot(var("b"))))

    def test_budget_enforced(self):
        big = band(*[bor(var(f"x{i}"), var(f"y{i}")) for i in range(20)])
        with pytest.raises(SolverError):
            to_dnf(big, max_terms=100)

    @given(expr=expressions(allow_negation=False), assignment=assignments)
    @settings(max_examples=60, deadline=None)
    def test_dnf_equivalence(self, expr, assignment):
        mapping = assignment_from_true_set(assignment)
        minterms = to_dnf(expr)
        dnf_value = any(term <= assignment for term in minterms)
        assert dnf_value == expr.evaluate(mapping)

    @given(expr=expressions(allow_negation=False))
    @settings(max_examples=40, deadline=None)
    def test_smallest_minterm_is_minimal_witness(self, expr):
        minterms = to_dnf(expr)
        if not minterms:
            return
        smallest = min(minterms, key=len)
        assert expr.evaluate(assignment_from_true_set(smallest))
        for dropped in smallest:
            assert not any(term <= smallest - {dropped} for term in minterms)


class TestMinimalSatisfyingSubset:
    def test_greedy_shrink(self):
        expr = band(var("t1"), bor(var("t4"), var("t5")))
        result = minimal_satisfying_subset(expr, {"t1", "t4", "t5"})
        assert expr.evaluate(assignment_from_true_set(result))
        assert len(result) == 2

    def test_rejects_non_satisfying_candidate(self):
        with pytest.raises(SolverError):
            minimal_satisfying_subset(band(var("a"), var("b")), {"a"})

    @given(expr=expressions(allow_negation=False), assignment=assignments)
    @settings(max_examples=40, deadline=None)
    def test_result_is_minimal(self, expr, assignment):
        mapping = assignment_from_true_set(assignment)
        if not expr.evaluate(mapping):
            return
        result = minimal_satisfying_subset(expr, assignment)
        assert expr.evaluate(assignment_from_true_set(result))
        for name in result:
            assert not expr.evaluate(assignment_from_true_set(result - {name}))
