"""End-to-end tests of a 3-shard grading cluster, in process, over real HTTP.

Three :class:`GradingServer` instances with distinct worker pools and stores
form a cluster on localhost.  Every scenario the cluster design claims is
exercised against real sockets: owner forwarding (bit-identical envelopes),
replicate-on-forward, the cross-shard store tier with forwarding disabled,
and the kill-one-shard drill (abrupt :meth:`GradingServer.kill`, standing in
for SIGKILL) where keys regain a live owner and fallback grades stay
bit-identical to in-process grading.
"""

from __future__ import annotations

import time

import pytest

from repro.api import GradingService, SubmissionRequest
from repro.cluster import ClusterClient, HashRing
from repro.cluster.supervisor import free_port
from repro.server import GradingClient, GradingServer, ServerConfig
from repro.server.workers import grade_envelope

REFERENCE = "\\project_{name} \\select_{dept = 'ECON'} Registration"
WRONG = "\\project_{name} Registration"
DATASET = "university:12"
NAMES = ("shard-0", "shard-1", "shard-2")

#: Mirrors the servers' placement ring (logical names, default virtual
#: nodes), so tests can pick keys with a known owner before anything boots.
STATIC_RING = HashRing(NAMES)


def seed_owned_by(name: str, start: int = 0) -> int:
    for seed in range(start, start + 2000):
        if STATIC_RING.owner_for(DATASET, seed) == name:
            return seed
    raise AssertionError(f"no seed owned by {name} in range")


def boot_cluster(**overrides) -> dict[str, GradingServer]:
    ports = {name: free_port() for name in NAMES}
    peers = tuple(f"{name}=http://127.0.0.1:{ports[name]}" for name in NAMES)
    servers = {}
    for name in NAMES:
        config = ServerConfig(
            port=ports[name],
            workers=1,
            cluster_self=name,
            cluster_peers=peers,
            cluster_heartbeat_interval=0.1,
            cluster_suspect_after=1,
            cluster_down_after=3,
            cluster_probe_timeout=1.0,
            **overrides,
        )
        servers[name] = GradingServer(config).start()
    wait_cluster_stable(servers)
    return servers


def wait_cluster_stable(servers: dict[str, GradingServer], timeout: float = 20.0) -> None:
    """Wait until every shard sees every peer alive."""
    deadline = time.monotonic() + timeout
    while True:
        states = {
            name: server.membership.states() for name, server in servers.items()
        }
        if all(
            all(state == "alive" for state in peer_states.values())
            for peer_states in states.values()
        ):
            return
        assert time.monotonic() < deadline, f"cluster never stabilised: {states}"
        time.sleep(0.05)


def stop_cluster(servers: dict[str, GradingServer]) -> None:
    for server in servers.values():
        if not server._shutdown_done.is_set():
            server.shutdown()


def payload(seed: int, test_query: str = WRONG, **extra) -> dict:
    return {
        "id": f"student/{seed}",
        "dataset": DATASET,
        "seed": seed,
        "correct": REFERENCE,
        "test": test_query,
        **extra,
    }


def strip(envelope: dict) -> dict:
    """The deterministic part of a grade envelope (drop routing fields)."""
    return {
        key: value
        for key, value in envelope.items()
        if key not in ("store", "wall_time", "id")
    }


def reference_envelope(seed: int, test_query: str = WRONG) -> dict:
    """What in-process grading (no server at all) says — the ground truth."""
    service = GradingService(default_dataset=DATASET, default_seed=seed)
    graded = service.submit(payload(seed, test_query))
    return strip(grade_envelope(graded))


@pytest.fixture(scope="module")
def cluster():
    servers = boot_cluster()
    yield servers
    stop_cluster(servers)


@pytest.fixture(scope="module")
def clients(cluster):
    clients = {
        name: GradingClient(f"http://127.0.0.1:{server.port}")
        for name, server in cluster.items()
    }
    yield clients
    for client in clients.values():
        client.close()


class TestClusterHealth:
    def test_cluster_health_endpoint(self, clients):
        health = clients["shard-0"].cluster_health()
        assert health["cluster"] is True
        assert health["name"] == "shard-0"
        assert set(health["peers"]) == set(NAMES)
        assert health["peers"]["shard-0"]["self"] is True
        assert sorted(health["live"]) == sorted(NAMES)
        assert health["virtual_nodes"] == 64

    def test_healthz_carries_cluster_summary(self, clients):
        health = clients["shard-1"].health()
        assert health["cluster"]["name"] == "shard-1"
        assert sorted(health["cluster"]["live"]) == sorted(NAMES)

    def test_uncluster_daemon_reports_cluster_false(self):
        server = GradingServer(ServerConfig(workers=1)).start()
        try:
            with GradingClient(f"http://127.0.0.1:{server.port}") as client:
                client.wait_until_healthy()
                health = client.cluster_health()
                assert health["cluster"] is False
                assert health["peers"] == {}
        finally:
            server.shutdown()


class TestForwarding:
    def test_non_owner_forwards_to_owner_bit_identical(self, cluster, clients):
        seed = seed_owned_by("shard-1")
        envelope = clients["shard-0"].grade(payload(seed))
        assert envelope["store"] == "forwarded"
        assert envelope["id"] == f"student/{seed}"
        assert strip(envelope) == reference_envelope(seed)
        # The grade physically happened on (and was stored by) the owner.
        owner_key = cluster["shard-1"]._store_key(
            SubmissionRequest.from_dict(payload(seed)), DATASET, seed
        )
        assert cluster["shard-1"].store.get(owner_key) is not None

    def test_owner_grades_locally(self, clients):
        seed = seed_owned_by("shard-2", start=100)
        envelope = clients["shard-2"].grade(payload(seed))
        assert envelope["store"] == "miss"
        assert strip(envelope) == reference_envelope(seed)

    def test_replicate_on_forward_makes_next_request_local(self, clients):
        seed = seed_owned_by("shard-1", start=200)
        first = clients["shard-0"].grade(payload(seed))
        assert first["store"] == "forwarded"
        second = clients["shard-0"].grade(payload(seed))
        assert second["store"] == "hit"  # persisted locally on the way through
        assert strip(first) == strip(second)

    def test_all_three_entry_points_agree(self, clients):
        seed = seed_owned_by("shard-0", start=300)
        envelopes = [clients[name].grade(payload(seed)) for name in NAMES]
        stripped = [strip(envelope) for envelope in envelopes]
        assert stripped[0] == stripped[1] == stripped[2] == reference_envelope(seed)

    def test_forward_metrics_exported(self, cluster, clients):
        seed = seed_owned_by("shard-2", start=400)
        clients["shard-0"].grade(payload(seed))
        text = clients["shard-0"].metrics_text()
        assert "# TYPE repro_cluster_forwarded_total counter" in text
        assert 'repro_cluster_forwarded_total{peer="shard-2"}' in text
        assert "repro_cluster_ring_size 3" in text
        assert 'repro_cluster_peer_state{peer="shard-1"} 0' in text

    def test_store_lookup_endpoint_answers_found_and_missing(self, cluster, clients):
        seed = seed_owned_by("shard-1", start=500)
        clients["shard-1"].grade(payload(seed))
        key = cluster["shard-1"]._store_key(
            SubmissionRequest.from_dict(payload(seed)), DATASET, seed
        )
        reply = clients["shard-1"].store_lookup(key.to_dict())
        assert reply["found"] is True
        assert reply["envelope"]["dataset"] == DATASET
        missing = clients["shard-2"].store_lookup({**key.to_dict(), "sub_hash": "0" * 64})
        assert missing == {"found": False, "envelope": None}

    def test_store_lookup_rejects_junk(self, clients):
        from repro.server import ServerError

        with pytest.raises(ServerError) as err:
            clients["shard-0"].store_lookup({"dataset": "x"})
        assert err.value.status == 400


class TestStoreTierWithoutForwarding:
    def test_remote_hit_before_grading_cold(self):
        servers = boot_cluster(cluster_forward=False)
        try:
            clients = {
                name: GradingClient(f"http://127.0.0.1:{server.port}")
                for name, server in servers.items()
            }
            seed = seed_owned_by("shard-1", start=600)
            # The static owner grades (and stores) first.
            first = clients["shard-1"].grade(payload(seed))
            assert first["store"] == "miss"
            # Another shard now probes the key's static preference peers
            # before grading cold — and finds the owner's row.
            second = clients["shard-0"].grade(payload(seed))
            assert second["store"] == "remote_hit"
            assert strip(first) == strip(second)
            # Replicated locally on the way through: third time is a hit.
            third = clients["shard-0"].grade(payload(seed))
            assert third["store"] == "hit"
            for client in clients.values():
                client.close()
        finally:
            stop_cluster(servers)


class TestKillDrill:
    def test_kill_one_shard_keys_regain_owner_and_grades_stay_identical(self):
        servers = boot_cluster()
        try:
            survivor = GradingClient(f"http://127.0.0.1:{servers['shard-0'].port}")
            victim_seed = seed_owned_by("shard-2", start=700)
            expected = reference_envelope(victim_seed)

            servers["shard-2"].kill()

            # Immediately after the kill the survivor may still think the
            # victim owns the key: the forward fails, membership learns, and
            # the grade falls back to local computation — never an error.
            envelope = survivor.grade(payload(victim_seed))
            assert envelope["correct"] == expected["correct"]
            assert strip(envelope) == expected
            assert envelope["store"] in ("miss", "remote_hit", "hit", "forwarded")

            # After heartbeats notice, every key owned by the victim has a
            # live owner among the survivors.
            deadline = time.monotonic() + 15.0
            membership = servers["shard-0"].membership
            while membership.states()["shard-2"] != "down":
                assert time.monotonic() < deadline, membership.states()
                time.sleep(0.05)
            for seed in range(100):
                owner = membership.owner(DATASET, seed)
                assert owner in ("shard-0", "shard-1")
            assert membership.live_peers() == ["shard-0", "shard-1"]

            # Requests keep succeeding and stay bit-identical.
            after = survivor.grade(payload(victim_seed))
            assert strip(after) == expected
            survivor.close()
        finally:
            stop_cluster(servers)

    def test_cluster_client_fails_over_after_kill(self):
        servers = boot_cluster()
        try:
            client = ClusterClient(
                [f"http://127.0.0.1:{server.port}" for server in servers.values()],
                retries=2,
                backoff=0.05,
            )
            seed = seed_owned_by("shard-1", start=800)
            expected = reference_envelope(seed)
            before = client.grade(payload(seed))
            assert strip(before) == expected

            servers["shard-1"].kill()

            # The owner is dead; the smart client walks the preference list,
            # refreshes its topology and lands on a survivor.
            after = client.grade(payload(seed))
            assert strip(after) == expected
            client.close()
        finally:
            stop_cluster(servers)
