"""Concurrency stress tests: pooled grading is bit-identical to serial."""

import pytest

from repro.api import GradingService, SubmissionRequest
from repro.datagen import university_instance
from repro.workload import course_questions


def class_batch():
    """Every question's correct query plus every handwritten mistake."""
    requests = []
    for question in course_questions():
        requests.append(
            SubmissionRequest(
                question.correct_text, question.correct_text, id=f"{question.key}/ok"
            )
        )
        for index, wrong in enumerate(question.wrong_texts):
            requests.append(
                SubmissionRequest(
                    question.correct_text, wrong, id=f"{question.key}/wrong{index}"
                )
            )
        # A malformed submission exercises the error path under the pool.
        requests.append(
            SubmissionRequest(
                question.correct_text, "\\select_{", id=f"{question.key}/crash"
            )
        )
    return requests


@pytest.fixture(scope="module")
def hidden_instance():
    return university_instance(35, seed=21)


def grades(service, requests, *, workers):
    return [
        graded.to_dict(include_timings=False)
        for graded in service.submit_batch(requests, workers=workers)
    ]


class TestDeterminismUnderConcurrency:
    def test_pooled_equals_serial_bit_for_bit(self, hidden_instance):
        requests = class_batch()
        serial_service = GradingService.for_instance(hidden_instance, name="hidden")
        serial = grades(serial_service, requests, workers=1)

        pooled_service = GradingService.for_instance(hidden_instance, name="hidden")
        pooled = grades(pooled_service, requests, workers=8)

        assert pooled == serial

    def test_repeated_pooled_runs_are_stable(self, hidden_instance):
        requests = class_batch()
        service = GradingService.for_instance(hidden_instance, name="hidden")
        first = grades(service, requests, workers=8)
        second = grades(service, requests, workers=8)
        assert first == second

    def test_shared_session_is_actually_shared(self, hidden_instance):
        service = GradingService.for_instance(hidden_instance, name="hidden")
        session = service.session_for()
        before = session.cache_info()["plan_misses"]
        service.submit_batch(class_batch(), workers=8)
        service.submit_batch(class_batch(), workers=8)
        after = session.cache_info()
        # The second batch is served from the caches: plans were only
        # compiled once per distinct query, and hits dominate misses.
        assert after["plan_misses"] > before
        assert after["plan_hits"] > 0

    def test_sqlite_backend_pooled_equals_python_serial(self, hidden_instance):
        """Backend × concurrency: pooled SQLite grading is bit-identical to
        serial Python grading — grades must not depend on either axis."""
        requests = class_batch()
        python_serial = grades(
            GradingService.for_instance(hidden_instance, name="hidden"),
            requests,
            workers=1,
        )
        sqlite_pooled = grades(
            GradingService.for_instance(hidden_instance, name="hidden", backend="sqlite"),
            requests,
            workers=8,
        )
        assert sqlite_pooled == python_serial

    def test_sqlite_backend_session_actually_uses_sqlite(self, hidden_instance):
        service = GradingService.for_instance(
            hidden_instance, name="hidden", backend="sqlite"
        )
        service.submit_batch(class_batch(), workers=8)
        stats = service.session_for().stats
        assert stats["sqlite_statements"] > 0

    def test_mixed_datasets_in_one_pooled_batch(self):
        service = GradingService()
        correct = "\\project_{name} \\select_{dept = 'ECON'} Registration"
        wrong = "\\project_{name} Registration"
        requests = [
            SubmissionRequest(correct, wrong, dataset="toy-university", id="toy"),
            SubmissionRequest(correct, wrong, dataset="university:20", id="gen"),
            SubmissionRequest(correct, correct, dataset="toy-university", id="ok"),
        ]
        serial = [g.to_dict(include_timings=False) for g in service.submit_batch(requests)]
        pooled = [
            g.to_dict(include_timings=False)
            for g in service.submit_batch(requests, workers=4)
        ]
        assert pooled == serial
        assert [g["id"] for g in pooled] == ["toy", "gen", "ok"]
