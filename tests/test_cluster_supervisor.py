"""Real-subprocess cluster: the supervisor boots daemons, SIGKILL is survived.

The in-process cluster tests cover routing semantics; this file proves the
operational story with actual ``python -m repro.cli serve`` processes — the
same path ``repro cluster`` and the CI cluster-smoke job use.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterClient
from repro.cluster.supervisor import ClusterSupervisor
from repro.server import GradingClient

REFERENCE = "\\project_{name} \\select_{dept = 'ECON'} Registration"
WRONG = "\\project_{name} Registration"

pytestmark = pytest.mark.slow


def payload(seed: int) -> dict:
    return {
        "id": f"student/{seed}",
        "dataset": "university:12",
        "seed": seed,
        "correct": REFERENCE,
        "test": WRONG,
    }


def strip(envelope: dict) -> dict:
    return {
        key: value
        for key, value in envelope.items()
        if key not in ("store", "wall_time", "id")
    }


def test_supervisor_boots_grades_and_survives_sigkill(tmp_path):
    supervisor = ClusterSupervisor(
        3, workers=1, store_dir=tmp_path / "stores", restart=False
    )
    with supervisor:
        supervisor.start(wait_healthy=True, timeout=120.0)
        status = supervisor.poll()
        assert all(shard["running"] for shard in status.values())

        # Every daemon sees the full peer map over real HTTP.
        with GradingClient(supervisor.urls[0]) as probe:
            health = probe.cluster_health()
            assert sorted(health["peers"]) == ["shard-0", "shard-1", "shard-2"]

        client = ClusterClient(supervisor.urls, retries=4, backoff=0.1)
        baseline = {seed: strip(client.grade(payload(seed))) for seed in range(6)}
        assert all(env["correct"] is False for env in baseline.values())

        supervisor.kill_shard("shard-1")
        assert supervisor.poll()["shard-1"]["running"] is False

        # Same keys after the kill: zero failures, bit-identical outcomes.
        for seed in range(6):
            assert strip(client.grade(payload(seed))) == baseline[seed]
        client.close()
