"""Tests for the aggregate branch-and-bound solver (SMT-lite)."""

import itertools

import pytest

from repro.errors import UnsatisfiableError
from repro.provenance.aggregate import (
    AggAnd,
    AggComparison,
    AggNot,
    AggOr,
    BoolCondition,
    NumConst,
    NumParam,
    SymbolicAggregate,
    ValuesDiffer,
)
from repro.provenance.boolexpr import bor, var
from repro.ra import AggregateFunction
from repro.solver.minones import ForeignKeyClause
from repro.solver.theory import AggregateProblem, AggregateSolver, AggregateSolverConfig, solve_aggregate


def _count(*names):
    return SymbolicAggregate(AggregateFunction.COUNT, tuple((var(n), 1) for n in names))


def _avg(pairs):
    return SymbolicAggregate(AggregateFunction.AVG, tuple((var(n), v) for n, v in pairs))


def brute_force(constraint, fk_clauses=(), parameters=()):
    names = sorted(constraint.variables())
    param_candidates = [-1, 0, 1, 2, 3, 4, 5]
    for size in range(len(names) + 1):
        for subset in itertools.combinations(names, size):
            kept = set(subset)
            if any(
                fk.child in kept and fk.parents and not (set(fk.parents) & kept)
                for fk in fk_clauses
            ):
                continue
            assignment = {name: True for name in kept}
            if not parameters:
                if constraint.evaluate(assignment, {}):
                    return size
            else:
                for values in itertools.product(param_candidates, repeat=len(parameters)):
                    if constraint.evaluate(assignment, dict(zip(parameters, values))):
                        return size
    return None


class TestAggregateSolver:
    def test_presence_only_constraint(self):
        constraint = BoolCondition(bor(var("a"), var("b")))
        result = solve_aggregate(constraint)
        assert result.cost == 1
        assert result.optimal

    def test_count_threshold(self):
        constraint = AggComparison(">=", _count("a", "b", "c"), NumConst(2))
        result = solve_aggregate(constraint)
        assert result.cost == 2

    def test_average_difference_example5(self):
        # Mary's average over CS courses vs over all courses: keeping only the
        # ECON registration (t6) plus presence makes the averages differ.
        avg_cs = _avg([("t4", 100), ("t5", 75)])
        avg_all = _avg([("t4", 100), ("t5", 75), ("t6", 95)])
        presence = BoolCondition(bor(var("t4"), var("t5"), var("t6")))
        constraint = AggAnd((presence, ValuesDiffer(avg_cs, avg_all)))
        result = solve_aggregate(constraint)
        assert result.cost == 1
        assert result.true_variables == frozenset({"t6"})

    def test_unsatisfiable(self):
        constraint = AggAnd(
            (
                AggComparison(">=", _count("a"), NumConst(2)),  # only one contributor
            )
        )
        with pytest.raises(UnsatisfiableError):
            solve_aggregate(constraint)

    def test_foreign_keys_respected(self):
        constraint = AggComparison(">=", _count("child"), NumConst(1))
        result = solve_aggregate(
            constraint, foreign_keys=[ForeignKeyClause("child", ("parent",))]
        )
        assert result.true_variables == frozenset({"child", "parent"})

    def test_budget_returns_best_effort(self):
        names = [f"x{i}" for i in range(12)]
        constraint = AggComparison(">=", _count(*names), NumConst(6))
        config = AggregateSolverConfig(max_nodes=50, time_budget=None)
        result = AggregateSolver(AggregateProblem(constraint=constraint), config).solve()
        assert result.timed_out or result.optimal
        assert result.cost >= 6  # still a valid (possibly non-optimal) answer

    def test_negation_and_disjunction(self):
        constraint = AggOr(
            (
                AggAnd((BoolCondition(var("a")), AggNot(BoolCondition(var("b"))))),
                AggComparison(">=", _count("c", "d"), NumConst(2)),
            )
        )
        result = solve_aggregate(constraint)
        assert result.cost == 1
        assert result.true_variables == frozenset({"a"})

    @pytest.mark.parametrize("threshold,expected", [(1, 1), (2, 2), (3, 3)])
    def test_matches_brute_force(self, threshold, expected):
        constraint = AggComparison(">=", _count("a", "b", "c", "d"), NumConst(threshold))
        assert solve_aggregate(constraint).cost == brute_force(constraint) == expected


class TestParameterSynthesis:
    def test_parameter_allows_smaller_counterexample(self):
        # count(kept) >= @p and the averages must differ; with a free parameter
        # the solver can pick p = 0 or 1 and keep a single tuple.
        count_expr = _count("t4", "t5", "t6")
        avg_cs = _avg([("t4", 100), ("t5", 75)])
        avg_all = _avg([("t4", 100), ("t5", 75), ("t6", 95)])
        constraint = AggAnd(
            (
                AggComparison(">=", count_expr, NumParam("numCS")),
                ValuesDiffer(avg_cs, avg_all),
            )
        )
        result = solve_aggregate(constraint)
        assert result.cost == 1
        assert "numCS" in result.parameter_values
        assignment = {name: True for name in result.true_variables}
        assert constraint.evaluate(assignment, result.parameter_values)

    def test_parameter_on_both_sides_is_handled(self):
        constraint = AggComparison(">=", NumParam("p"), NumParam("p"))
        result = solve_aggregate(constraint)
        assert result.cost == 0

    def test_brute_force_agreement_with_parameters(self):
        constraint = AggAnd(
            (
                AggComparison(">=", _count("a", "b", "c"), NumParam("k")),
                AggComparison(">=", _count("a", "b"), NumConst(1)),
            )
        )
        result = solve_aggregate(constraint)
        expected = brute_force(constraint, parameters=["k"])
        assert result.cost == expected

    def test_variable_order_prioritises_frequent_variables(self):
        constraint = AggAnd(
            (
                BoolCondition(var("hot")),
                AggComparison(">=", _count("hot", "cold"), NumConst(1)),
            )
        )
        problem = AggregateProblem(constraint=constraint)
        order = AggregateSolver(problem)._variable_order()
        assert order[0] == "hot"
