"""Exposition-format edge cases for the stdlib metrics registry.

Covers the corners a scraper actually trips on: label-value escaping, the
``+Inf`` histogram bucket, callback-backed gauges merging with directly-set
series, and a raising callback (which must cost one series, not the scrape).
A golden round-trip pushes a fully-populated registry through the bundled
exposition parser (:mod:`repro.obs.promparse`) — the same parser the CI
smoke job uses to validate a live ``/metrics`` endpoint.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.promparse import parse_exposition
from repro.server.metrics import (
    CALLBACK_ERRORS_METRIC,
    MetricsRegistry,
    label_key,
)


class TestEscaping:
    def test_label_values_escape_backslash_quote_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "Counter with hostile label values.")
        registry.inc("odd_total", {"path": 'C:\\dir\n"quoted"'})
        text = registry.render()
        assert 'odd_total{path="C:\\\\dir\\n\\"quoted\\""} 1' in text

    def test_escaped_values_round_trip_through_the_parser(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "Counter with hostile label values.")
        hostile = 'back\\slash and "quote" and\nnewline'
        registry.inc("odd_total", {"v": hostile})
        families = parse_exposition(registry.render())
        (sample,) = families["odd_total"].samples
        assert sample.labels == {"v": hostile}
        assert sample.value == 1.0


class TestHistogramExposition:
    def test_infinity_bucket_is_rendered_and_cumulative(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        registry.observe("lat_seconds", 0.05)
        registry.observe("lat_seconds", 0.5)
        registry.observe("lat_seconds", 100.0)  # beyond the last bound
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_parser_checks_histogram_invariants(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        registry.observe("lat_seconds", 0.5, {"stage": "grade"})
        families = parse_exposition(registry.render())
        family = families["lat_seconds"]
        assert family.kind == "histogram"
        inf_samples = [
            s
            for s in family.samples
            if s.name == "lat_seconds_bucket" and s.labels.get("le") == "+Inf"
        ]
        assert [s.value for s in inf_samples] == [1.0]
        assert math.isinf(float("inf"))  # sanity: +Inf parsed as float works

    def test_parser_rejects_non_cumulative_buckets(self):
        bad = "\n".join(
            [
                "# TYPE lat_seconds histogram",
                'lat_seconds_bucket{le="0.1"} 5',
                'lat_seconds_bucket{le="1"} 3',  # decreasing: invalid
                'lat_seconds_bucket{le="+Inf"} 5',
                "lat_seconds_sum 1",
                "lat_seconds_count 5",
                "",
            ]
        )
        with pytest.raises(ValueError, match="cumulative|decreas"):
            parse_exposition(bad)


class TestCallbackGauges:
    def test_bare_float_callback(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "Queue depth.", callback=lambda: 7)
        families = parse_exposition(registry.render())
        (sample,) = families["depth"].samples
        assert sample.value == 7.0

    def test_labelled_callback_merges_with_set_series(self):
        registry = MetricsRegistry()
        registry.gauge(
            "states",
            "Peer states.",
            callback=lambda: {label_key({"peer": "a"}): 1.0},
        )
        registry.set("states", 2.0, {"peer": "b"})
        families = parse_exposition(registry.render())
        by_peer = {s.labels["peer"]: s.value for s in families["states"].samples}
        assert by_peer == {"a": 1.0, "b": 2.0}

    def test_raising_callback_skips_series_and_counts_the_error(self):
        registry = MetricsRegistry()
        registry.gauge("healthy", "Always works.", callback=lambda: 1.0)

        def explode():
            raise RuntimeError("scrape-time failure")

        registry.gauge("broken", "Always raises.", callback=explode)
        first = registry.render()  # must not raise
        assert "healthy 1" in first
        assert "\nbroken " not in first  # the series is absent, not zeroed
        # The error counter was snapshotted before callbacks ran, so the
        # increment lands on the *next* scrape.
        second = registry.render()
        assert f'{CALLBACK_ERRORS_METRIC}{{metric="broken"}} 1' in second
        assert registry.counter_value(
            CALLBACK_ERRORS_METRIC, {"metric": "broken"}
        ) == 2.0  # two scrapes, two failures

    def test_callback_returning_junk_counts_as_error(self):
        registry = MetricsRegistry()
        registry.gauge("junky", "Returns a string.", callback=lambda: "nope")
        registry.render()
        assert (
            registry.counter_value(CALLBACK_ERRORS_METRIC, {"metric": "junky"})
            == 1.0
        )


class TestCallbackCounters:
    """Counter families can be callback-backed, mirroring gauges.

    The delta-maintenance counters (``repro_engine_delta_*_total``,
    ``repro_solver_clause_reuse_total``) are rendered this way: each worker
    owns its cumulative totals and the scrape-time callback replaces the
    stored series with the latest per-worker snapshot.
    """

    def test_mapping_callback_replaces_stored_series(self):
        registry = MetricsRegistry()
        totals = {label_key({"worker": "0"}): 3.0}
        registry.counter("patched_total", "Patched memos.", callback=lambda: totals)
        families = parse_exposition(registry.render())
        (sample,) = families["patched_total"].samples
        assert families["patched_total"].kind == "counter"
        assert sample.labels == {"worker": "0"}
        assert sample.value == 3.0
        # The callback owns the cumulative total: a later snapshot wins.
        totals[label_key({"worker": "0"})] = 5.0
        totals[label_key({"worker": "1"})] = 1.0
        by_worker = {
            s.labels["worker"]: s.value
            for s in parse_exposition(registry.render())["patched_total"].samples
        }
        assert by_worker == {"0": 5.0, "1": 1.0}

    def test_bare_number_callback(self):
        registry = MetricsRegistry()
        registry.counter("reuse_total", "Clause reuse.", callback=lambda: 4)
        families = parse_exposition(registry.render())
        (sample,) = families["reuse_total"].samples
        assert sample.value == 4.0

    def test_raising_counter_callback_skips_series_and_counts_the_error(self):
        registry = MetricsRegistry()
        registry.counter("fine_total", "Always works.", callback=lambda: 1.0)

        def explode():
            raise RuntimeError("scrape-time failure")

        registry.counter("broken_total", "Always raises.", callback=explode)
        first = registry.render()  # must not raise
        assert "fine_total 1" in first
        assert "\nbroken_total " not in first  # absent, never zeroed backwards
        second = registry.render()
        assert f'{CALLBACK_ERRORS_METRIC}{{metric="broken_total"}} 1' in second

    def test_delta_counter_families_render_through_promparse(self):
        """Golden scrape: the five delta/solver families, labelled per worker."""
        families_declared = (
            "repro_engine_delta_maintained_total",
            "repro_engine_delta_patched_total",
            "repro_engine_delta_dropped_total",
            "repro_engine_delta_fallback_total",
            "repro_solver_clause_reuse_total",
        )
        registry = MetricsRegistry()
        for index, name in enumerate(families_declared):
            registry.counter(
                name,
                f"Family #{index}.",
                callback=lambda index=index: {
                    label_key({"worker": "0"}): float(index),
                    label_key({"worker": "1"}): float(index * 10),
                },
            )
        families = parse_exposition(registry.render())
        for index, name in enumerate(families_declared):
            assert families[name].kind == "counter"
            by_worker = {s.labels["worker"]: s.value for s in families[name].samples}
            assert by_worker == {"0": float(index), "1": float(index * 10)}


class TestGoldenRoundTrip:
    def test_fully_populated_registry_parses_cleanly(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.")
        registry.inc("req_total", {"endpoint": "/v1/grade", "status": "200"}, 3)
        registry.inc("req_total", {"endpoint": "/metrics", "status": "200"})
        registry.gauge("up", "Uptime flag.")
        registry.set("up", 1.0)
        registry.gauge("info", "Build info.", callback=lambda: {label_key({"version": "1.0"}): 1.0})
        registry.histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            registry.observe("lat_seconds", value, {"stage": "grade"})
        families = parse_exposition(registry.render())
        assert families["req_total"].kind == "counter"
        assert len(families["req_total"].samples) == 2
        assert families["up"].samples[0].value == 1.0
        assert families["info"].samples[0].labels == {"version": "1.0"}
        grade_count = [
            s
            for s in families["lat_seconds"].samples
            if s.name == "lat_seconds_count"
        ]
        assert [s.value for s in grade_count] == [4.0]

    def test_parser_reports_the_offending_line(self):
        text = "# TYPE ok_metric counter\nok_metric 1\nok_metric{ 2\n"
        with pytest.raises(ValueError, match="line 3"):
            parse_exposition(text)
