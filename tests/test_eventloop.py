"""Protocol tests for the selectors-based HTTP frontend, over raw sockets.

The event loop replaced ``ThreadingHTTPServer`` wholesale, so the HTTP/1.1
slice the grading protocol relies on is pinned here at the byte level:
keep-alive with in-order responses, pipelining, ``Connection: close``,
split-across-packets bodies, and the malformed-input answers (400/413/431).
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.cluster.eventloop import (
    MAX_BODY_BYTES,
    EventLoopHTTPServer,
    HTTPRequest,
    HTTPResponse,
)


def echo_dispatch(request: HTTPRequest) -> HTTPResponse:
    body = json.dumps(
        {
            "method": request.method,
            "path": request.path,
            "body_len": len(request.body),
            "echo": request.body.decode("utf-8", errors="replace"),
        }
    ).encode("utf-8")
    return HTTPResponse(200, body)


@pytest.fixture(scope="module")
def server():
    server = EventLoopHTTPServer(("127.0.0.1", 0), echo_dispatch, handler_threads=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=5.0)


class RawConnection:
    """A raw socket plus a parse buffer, so pipelined responses survive —
    one recv may deliver several back-to-back responses."""

    def __init__(self, server) -> None:
        self.sock = socket.create_connection(server.server_address, timeout=5.0)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def __enter__(self) -> "RawConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.sock.close()

    def sendall(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv(self, size: int) -> bytes:
        if self.buffer:
            data, self.buffer = self.buffer[:size], self.buffer[size:]
            return data
        return self.sock.recv(size)

    def settimeout(self, value: float) -> None:
        self.sock.settimeout(value)

    def close(self) -> None:
        self.sock.close()


def connect(server) -> RawConnection:
    return RawConnection(server)


def read_response(conn: RawConnection) -> tuple[int, dict[str, str], bytes]:
    """Read exactly one HTTP response, leaving any trailing bytes buffered."""
    while b"\r\n\r\n" not in conn.buffer:
        chunk = conn.sock.recv(65536)
        assert chunk, f"connection closed mid-headers: {conn.buffer!r}"
        conn.buffer += chunk
    head, _, rest = conn.buffer.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = conn.sock.recv(65536)
        assert chunk, "connection closed mid-body"
        rest += chunk
    conn.buffer = rest[length:]
    return status, headers, rest[:length]


def post(path: str, payload: bytes, *, close: bool = False) -> bytes:
    connection = "close" if close else "keep-alive"
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode() + payload


def test_keep_alive_many_requests_one_connection(server) -> None:
    with connect(server) as sock:
        for index in range(20):
            sock.sendall(post("/echo", f"req-{index}".encode()))
            status, headers, body = read_response(sock)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            assert json.loads(body)["echo"] == f"req-{index}"


def test_pipelined_requests_answered_in_order(server) -> None:
    with connect(server) as sock:
        burst = b"".join(post("/pipe", f"p-{index}".encode()) for index in range(10))
        sock.sendall(burst)
        for index in range(10):
            status, _, body = read_response(sock)
            assert status == 200
            assert json.loads(body)["echo"] == f"p-{index}"


def test_connection_close_honored(server) -> None:
    with connect(server) as sock:
        sock.sendall(post("/bye", b"x", close=True))
        status, headers, _ = read_response(sock)
        assert status == 200
        assert headers["connection"] == "close"
        assert sock.recv(1) == b""  # server actually closed


def test_body_split_across_many_packets(server) -> None:
    payload = b"z" * 70_000
    with connect(server) as sock:
        raw = post("/big", payload)
        for start in range(0, len(raw), 8192):
            sock.sendall(raw[start : start + 8192])
            time.sleep(0.001)
        status, _, body = read_response(sock)
        assert status == 200
        assert json.loads(body)["body_len"] == len(payload)


def test_get_without_content_length(server) -> None:
    with connect(server) as sock:
        sock.sendall(b"GET /plain HTTP/1.1\r\nHost: t\r\n\r\n")
        status, _, body = read_response(sock)
        assert status == 200
        assert json.loads(body) == {
            "method": "GET", "path": "/plain", "body_len": 0, "echo": ""
        }


def test_malformed_request_line_gets_400(server) -> None:
    with connect(server) as sock:
        sock.sendall(b"NONSENSE\r\n\r\n")
        status, headers, body = read_response(sock)
        assert status == 400
        assert headers["connection"] == "close"
        assert json.loads(body)["error_kind"] == "invalid_request"


def test_malformed_header_gets_400(server) -> None:
    with connect(server) as sock:
        sock.sendall(b"GET / HTTP/1.1\r\nthis is not a header\r\n\r\n")
        status, _, _ = read_response(sock)
        assert status == 400


def test_bad_content_length_gets_400(server) -> None:
    with connect(server) as sock:
        sock.sendall(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        status, _, _ = read_response(sock)
        assert status == 400


def test_oversized_body_refused_with_413(server) -> None:
    with connect(server) as sock:
        sock.sendall(
            f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        status, _, _ = read_response(sock)
        assert status == 413


def test_oversized_headers_refused_with_431(server) -> None:
    with connect(server) as sock:
        sock.sendall(b"GET / HTTP/1.1\r\nX-Junk: " + b"j" * (70 * 1024))
        status, _, _ = read_response(sock)
        assert status == 431


def test_handler_exception_becomes_500() -> None:
    def broken(request: HTTPRequest) -> HTTPResponse:
        raise RuntimeError("boom")

    server = EventLoopHTTPServer(("127.0.0.1", 0), broken, handler_threads=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with connect(server) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            status, _, body = read_response(sock)
            assert status == 500
            assert json.loads(body)["error_kind"] == "internal_error"
    finally:
        server.shutdown()
        thread.join(timeout=5.0)


def test_concurrent_connections_multiplex() -> None:
    barrier = threading.Barrier(8 + 1)

    def slow(request: HTTPRequest) -> HTTPResponse:
        time.sleep(0.05)
        return HTTPResponse(200, b"{}")

    server = EventLoopHTTPServer(("127.0.0.1", 0), slow, handler_threads=8)
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    results: list[int] = []
    lock = threading.Lock()

    def client() -> None:
        with connect(server) as sock:
            barrier.wait(timeout=5.0)
            sock.sendall(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            status, _, _ = read_response(sock)
            with lock:
                results.append(status)

    threads = [threading.Thread(target=client) for _ in range(8)]
    try:
        for thread in threads:
            thread.start()
        barrier.wait(timeout=5.0)
        started = time.monotonic()
        for thread in threads:
            thread.join(timeout=10.0)
        elapsed = time.monotonic() - started
        assert results == [200] * 8
        # 8 concurrent 50ms handlers over 8 threads: far below 8 × 50ms.
        assert elapsed < 0.35, f"handlers appear serialized: {elapsed:.2f}s"
    finally:
        server.shutdown()
        serve_thread.join(timeout=5.0)


def test_close_now_drops_connections_abruptly() -> None:
    server = EventLoopHTTPServer(("127.0.0.1", 0), echo_dispatch, handler_threads=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    sock = connect(server)
    try:
        sock.sendall(post("/x", b"1"))
        assert read_response(sock)[0] == 200
        server.close_now()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # The kernel answers with EOF or reset; either way the peer is gone.
        sock.settimeout(2.0)
        try:
            leftover = sock.recv(4096)
            assert leftover == b"" or True
        except OSError:
            pass
    finally:
        sock.close()


def test_shutdown_before_serve_is_safe() -> None:
    server = EventLoopHTTPServer(("127.0.0.1", 0), echo_dispatch, handler_threads=1)
    server.shutdown()  # never served; must not hang or raise
    server.serve_forever()  # returns immediately after teardown
    server.server_close()  # idempotent
