"""End-to-end tracing through the grading daemon, over real HTTP.

``?trace=1`` must return one coherent trace — entry-daemon span, worker
span, grading-phase spans and per-operator engine spans — without ever
contaminating the deterministic grade envelope that coalesced followers and
the persistent store see.  The forwarded-hop scenario boots a 2-shard
cluster and asserts the trace stays whole across daemons.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import HashRing
from repro.cluster.supervisor import free_port
from repro.server import GradingClient, GradingServer, ServerConfig

REFERENCE = "\\project_{name} \\select_{dept = 'ECON'} Registration"
WRONG = "\\project_{name} Registration"


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(workers=1, slow_request_seconds=0.0)
    instance = GradingServer(config).start()
    yield instance
    instance.shutdown()


@pytest.fixture(scope="module")
def client(server):
    with GradingClient(f"http://127.0.0.1:{server.port}") as c:
        c.wait_until_healthy()
        yield c


def payload(seed: int = 0, **extra) -> dict:
    return {"id": f"s/{seed}", "correct": REFERENCE, "test": WRONG, "seed": seed, **extra}


class TestTracedGrade:
    def test_trace_block_covers_server_worker_and_operators(self, client):
        envelope = client.grade(payload(seed=101), trace=True)
        trace = envelope["trace"]
        spans = trace["spans"]
        names = [span["name"] for span in spans]
        assert "server.grade" in names
        assert "worker.grade" in names
        assert "grade.reference_eval" in names
        assert "grade.explain" in names
        assert any(name.startswith("op.") for name in names)
        assert {span["trace_id"] for span in spans} == {trace["trace_id"]}
        # The worker's spans really came from the worker process.
        services = {span["service"] for span in spans}
        assert any(service.startswith("worker-") for service in services)

    def test_untraced_grade_has_no_trace_block(self, client):
        envelope = client.grade(payload(seed=102))
        assert "trace" not in envelope

    def test_store_hit_is_still_traced(self, client):
        client.grade(payload(seed=103))
        envelope = client.grade(payload(seed=103), trace=True)
        assert envelope["store"] == "hit"
        trace = envelope["trace"]
        assert [span["name"] for span in trace["spans"]] == ["server.grade"]
        assert trace["spans"][0]["attributes"]["store"] == "hit"

    def test_trace_never_enters_the_persistent_store(self, client, server):
        client.grade(payload(seed=104), trace=True)  # cold grade, traced
        key = server._store_key(
            __import__("repro.api.service", fromlist=["SubmissionRequest"])
            .SubmissionRequest.from_dict(payload(seed=104)),
            "toy-university",
            104,
        )
        stored = server.store.get(key)
        assert stored is not None
        assert "trace" not in stored
        # A later untraced request must see the clean envelope too.
        envelope = client.grade(payload(seed=104))
        assert envelope["store"] == "hit"
        assert "trace" not in envelope

    def test_client_supplied_traceparent_continues_the_trace(self, client):
        trace_id = "f" * 32
        header = f"00-{trace_id}-{'1' * 16}-01"
        envelope = client.grade(
            payload(seed=105), headers={"traceparent": header}, trace=True
        )
        assert envelope["trace"]["trace_id"] == trace_id

    def test_sat_counters_ride_on_the_explain_span(self, client):
        envelope = client.grade(payload(seed=106), trace=True)
        explain_spans = [
            span
            for span in envelope["trace"]["spans"]
            if span["name"] == "grade.explain"
        ]
        assert explain_spans
        # The counterexample search may or may not reach the SAT solver for
        # this query class; when it does, the counters must land here.
        metrics = explain_spans[0].get("metrics", {})
        if "sat_solve_calls" in metrics:
            assert metrics["sat_solve_calls"] >= 1


class TestDebugEndpoint:
    def test_trace_lookup_by_id(self, client):
        envelope = client.grade(payload(seed=110), trace=True)
        trace_id = envelope["trace"]["trace_id"]
        reply = client.debug_traces(trace_id=trace_id)
        (entry,) = reply["traces"]
        assert entry["trace_id"] == trace_id
        assert len(entry["spans"]) >= len(envelope["trace"]["spans"])

    def test_snapshot_lists_recent_traces_and_slow_requests(self, client):
        client.grade(payload(seed=111), trace=True)
        reply = client.debug_traces(limit=5)
        assert reply["traces"]
        assert len(reply["traces"]) <= 5
        # slow_request_seconds=0.0 puts every root span in the slow log.
        assert reply["slow"]

    def test_bad_limit_is_a_client_error(self, client):
        from repro.server import ServerError

        with pytest.raises(ServerError) as err:
            client.debug_traces(limit="bogus")
        assert err.value.status == 400

    def test_unknown_trace_id_is_empty_not_an_error(self, client):
        reply = client.debug_traces(trace_id="e" * 32)
        assert reply["traces"] == []


class TestForwardedTrace:
    DATASET = "university:12"
    NAMES = ("shard-0", "shard-1")

    def _boot(self):
        ports = {name: free_port() for name in self.NAMES}
        peers = tuple(
            f"{name}=http://127.0.0.1:{ports[name]}" for name in self.NAMES
        )
        servers = {}
        for name in self.NAMES:
            config = ServerConfig(
                port=ports[name],
                workers=1,
                cluster_self=name,
                cluster_peers=peers,
                cluster_heartbeat_interval=0.1,
            )
            servers[name] = GradingServer(config).start()
        deadline = time.monotonic() + 20.0
        while True:
            if all(
                all(state == "alive" for state in server.membership.states().values())
                for server in servers.values()
            ):
                return servers
            assert time.monotonic() < deadline, "cluster never stabilised"
            time.sleep(0.05)

    def test_trace_survives_the_forward_hop(self):
        servers = self._boot()
        try:
            ring = HashRing(self.NAMES)
            seed = next(
                s for s in range(2000) if ring.owner_for(self.DATASET, s) == "shard-1"
            )
            entry = servers["shard-0"]
            with GradingClient(f"http://127.0.0.1:{entry.port}") as client:
                client.wait_until_healthy()
                envelope = client.grade(
                    payload(seed=seed, dataset=self.DATASET), trace=True
                )
                assert envelope["store"] == "forwarded"
                trace = envelope["trace"]
                names = [span["name"] for span in trace["spans"]]
                assert "cluster.forward" in names
                assert names.count("server.grade") == 2  # entry + owner
                assert "worker.grade" in names
                assert {span["trace_id"] for span in trace["spans"]} == {
                    trace["trace_id"]
                }
                services = {span["service"] for span in trace["spans"]}
                assert {"shard-0", "shard-1"} <= services
                # Both daemons hold the trace in their debug stores.
                for server in servers.values():
                    with GradingClient(f"http://127.0.0.1:{server.port}") as peer:
                        reply = peer.debug_traces(trace_id=trace["trace_id"])
                        assert reply["traces"], server.config.cluster_self
        finally:
            for server in servers.values():
                server.shutdown()
