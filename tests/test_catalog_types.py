"""Tests for data types and value coercion."""

import pytest

from repro.catalog.types import (
    DataType,
    coerce,
    common_numeric_type,
    comparable,
    infer_type,
    is_numeric,
)
from repro.errors import TypeMismatchError


class TestInferType:
    def test_infer_int(self):
        assert infer_type(42) is DataType.INT

    def test_infer_float(self):
        assert infer_type(3.5) is DataType.FLOAT

    def test_infer_string(self):
        assert infer_type("CS") is DataType.STRING

    def test_infer_bool_before_int(self):
        assert infer_type(True) is DataType.BOOL

    def test_infer_unsupported(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestCoerce:
    def test_int_passthrough(self):
        assert coerce(7, DataType.INT) == 7

    def test_int_widens_to_float(self):
        value = coerce(7, DataType.FLOAT)
        assert value == 7.0
        assert isinstance(value, float)

    def test_string_not_coerced_to_int(self):
        with pytest.raises(TypeMismatchError):
            coerce("42", DataType.INT)

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, DataType.INT)

    def test_int_not_accepted_as_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(1, DataType.BOOL)

    def test_null_rejected_by_default(self):
        with pytest.raises(TypeMismatchError):
            coerce(None, DataType.STRING)

    def test_null_allowed_when_nullable(self):
        assert coerce(None, DataType.STRING, nullable=True) is None

    def test_string_passthrough(self):
        assert coerce("hello", DataType.STRING) == "hello"


class TestNumericHelpers:
    def test_is_numeric(self):
        assert is_numeric(DataType.INT)
        assert is_numeric(DataType.FLOAT)
        assert not is_numeric(DataType.STRING)

    def test_common_numeric_type_widening(self):
        assert common_numeric_type(DataType.INT, DataType.FLOAT) is DataType.FLOAT
        assert common_numeric_type(DataType.INT, DataType.INT) is DataType.INT

    def test_common_numeric_type_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(DataType.INT, DataType.STRING)

    def test_comparable(self):
        assert comparable(DataType.INT, DataType.FLOAT)
        assert comparable(DataType.STRING, DataType.STRING)
        assert not comparable(DataType.STRING, DataType.INT)
