"""The verification layer must catch every way a counterexample can be wrong.

Positive paths (real results verify clean) are covered here and, at scale, by
``tests/test_fuzz_counterexamples.py``; the heart of this suite is negative:
each test forges a defect — a non-distinguishing witness, a broken FK chain,
an inflated size, a false minimality claim — and asserts the corresponding
check fails with that check named in the report.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import find_smallest_counterexample
from repro.core.results import CounterexampleResult, witness_cardinality
from repro.core.verify import (
    VerificationFailure,
    verify_counterexample,
)
from repro.datagen import toy_university_instance
from repro.engine.session import EngineSession
from repro.parser import parse_query
from repro.ra.evaluator import evaluate


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


@pytest.fixture(scope="module")
def session(instance):
    return EngineSession(instance)


@pytest.fixture(scope="module")
def queries():
    q1 = parse_query("\\select_{dept = 'CS'} Registration")
    q2 = parse_query("\\select_{dept = 'EE'} Registration")
    return q1, q2


@pytest.fixture(scope="module")
def good_result(instance, session, queries):
    q1, q2 = queries
    return find_smallest_counterexample(q1, q2, instance, session=session)


class TestValidResults:
    def test_genuine_result_verifies_clean(self, instance, session, queries, good_result):
        q1, q2 = queries
        report = verify_counterexample(q1, q2, instance, good_result, session=session)
        assert report.valid, report.issues
        assert report.checks["distinguishes"] == "ok"
        assert report.checks["fk_closed"] == "ok"
        assert report.checks["size"] == "ok"

    def test_minimality_oracles_run_on_optimal_claims(
        self, instance, session, queries, good_result
    ):
        q1, q2 = queries
        assert good_result.optimal
        report = verify_counterexample(q1, q2, instance, good_result, session=session)
        assert report.minimality_method in (
            "bruteforce",
            "enumeration",
            "bruteforce+enumeration",
        )

    def test_raise_if_invalid_is_a_no_op_on_valid(self, instance, session, queries, good_result):
        q1, q2 = queries
        report = verify_counterexample(q1, q2, instance, good_result, session=session)
        assert report.raise_if_invalid() is report

    def test_non_optimal_results_skip_minimality(self, instance, session, queries, good_result):
        q1, q2 = queries
        humbled = dataclasses.replace(good_result, optimal=False)
        report = verify_counterexample(q1, q2, instance, humbled, session=session)
        assert report.valid
        assert report.minimality_method == "not_claimed"

    def test_every_algorithm_round_trips_through_verification(self, instance, session):
        q1 = parse_query("\\project_{name} (Registration \\join Student)")
        q2 = parse_query("\\project_{name} (\\select_{dept = 'ECON'} (Registration) \\join Student)")
        for algorithm in ("optsigma", "basic", "polytime-dnf", "spjud-star"):
            result = find_smallest_counterexample(
                q1, q2, instance, algorithm=algorithm, session=session
            )
            report = verify_counterexample(q1, q2, instance, result, session=session)
            assert report.valid, (algorithm, report.issues)


class TestForgedDefects:
    def test_non_distinguishing_witness_fails(self, instance, session, queries, good_result):
        q1, q2 = queries
        # Swap the two recorded result sets: the witness no longer reproduces them.
        forged = dataclasses.replace(
            good_result, q1_rows=good_result.q2_rows, q2_rows=good_result.q1_rows
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        assert not report.valid
        assert report.checks["distinguishes"] == "failed"

    def test_identical_queries_never_verify(self, instance, session, queries, good_result):
        q1, _ = queries
        report = verify_counterexample(q1, q1, instance, good_result, session=session)
        assert not report.valid

    def test_tampered_tid_set_fails(self, instance, session, queries, good_result):
        q1, q2 = queries
        extra = next(
            tid for tid in sorted(instance.all_tids()) if tid not in good_result.tids
        )
        forged = dataclasses.replace(
            good_result, tids=good_result.tids | {extra}
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        assert not report.valid
        assert report.checks["witness_tuples"] == "failed"

    def test_unknown_tid_fails(self, instance, session, queries, good_result):
        q1, q2 = queries
        forged = dataclasses.replace(
            good_result,
            tids=good_result.tids | {"Student:9999"},
            counterexample=good_result.counterexample,
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        assert not report.valid
        assert report.checks["witness_tuples"] == "failed"

    def test_broken_fk_chain_fails(self, instance, session):
        # Registration rows reference Student rows; keep a Registration tuple
        # and forge a witness that drops its Student parent.
        q1 = parse_query("\\project_{name} (Registration \\join Student)")
        q2 = parse_query("\\project_{name} (\\select_{dept = 'ECON'} (Registration) \\join Student)")
        result = find_smallest_counterexample(q1, q2, instance, session=session)
        child = next(tid for tid in result.tids if tid.startswith("Registration:"))
        orphaned_tids = frozenset({child})
        forged = dataclasses.replace(
            result,
            tids=orphaned_tids,
            counterexample=instance.subinstance(orphaned_tids),
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        assert not report.valid
        assert report.checks["fk_closed"] == "failed"

    def test_false_minimality_claim_fails(self, instance, session):
        q1 = parse_query("\\project_{name} (Registration \\join Student)")
        q2 = parse_query("\\project_{name} (\\select_{dept = 'ECON'} (Registration) \\join Student)")
        result = find_smallest_counterexample(q1, q2, instance, session=session)
        # Inflate the witness with an unrelated-but-valid tuple while keeping
        # the optimal flag: the minimality oracles must call the bluff.
        padding = next(
            tid
            for tid in sorted(instance.all_tids())
            if tid.startswith("Student:") and tid not in result.tids
        )
        inflated_tids = result.tids | {padding}
        inflated_sub = instance.subinstance(inflated_tids)
        forged = dataclasses.replace(
            result,
            tids=inflated_tids,
            counterexample=inflated_sub,
            q1_rows=evaluate(q1, inflated_sub),
            q2_rows=evaluate(q2, inflated_sub),
            optimal=True,
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        assert not report.valid
        assert report.checks["minimality"] == "failed"

    def test_raise_if_invalid_raises_with_report(self, instance, session, queries, good_result):
        q1, q2 = queries
        forged = dataclasses.replace(
            good_result, q1_rows=good_result.q2_rows, q2_rows=good_result.q1_rows
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        with pytest.raises(VerificationFailure) as excinfo:
            report.raise_if_invalid()
        assert excinfo.value.report is report


class TestSizeReconciliation:
    def test_size_counts_distinct_tuples(self):
        assert witness_cardinality(["Student:1", "Student:1", "Registration:2"]) == 2
        assert witness_cardinality([]) == 0

    def test_result_size_report_and_serialization_agree(
        self, instance, session, queries, good_result
    ):
        from repro.ratest.report import RATestReport

        assert good_result.size == witness_cardinality(good_result.tids)
        assert good_result.size == good_result.counterexample.total_size()
        report = RATestReport(
            correct_query_text="q1", test_query_text="q2", result=good_result
        )
        assert report.counterexample_size == good_result.size
        round_tripped = CounterexampleResult.from_dict(good_result.to_dict())
        assert round_tripped.size == good_result.size

    def test_size_mismatch_is_detected(self, instance, session, queries, good_result):
        q1, q2 = queries
        forged = dataclasses.replace(
            good_result, tids=good_result.tids | {"Student:1"} | {"Student:2"}
        )
        report = verify_counterexample(q1, q2, instance, forged, session=session)
        assert not report.valid
