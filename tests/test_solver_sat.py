"""Tests for the CDCL SAT solver, including randomised checks against brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.sat import SATSolver


def brute_force_satisfiable(clauses, num_vars):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def check_model(clauses, model):
    return all(any(model.get(abs(l), False) == (l > 0) for l in clause) for clause in clauses)


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert SATSolver().solve() == {}

    def test_single_unit(self):
        solver = SATSolver()
        solver.add_clause([1])
        assert solver.solve()[1] is True

    def test_contradictory_units(self):
        solver = SATSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is None
        assert solver.is_permanently_unsat()

    def test_simple_implication_chain(self):
        solver = SATSolver()
        solver.add_clauses([[1], [-1, 2], [-2, 3]])
        model = solver.solve()
        assert model[1] and model[2] and model[3]

    def test_tautology_dropped(self):
        solver = SATSolver()
        solver.add_clause([1, -1])
        assert solver.solve() == {}

    def test_empty_clause_is_unsat(self):
        solver = SATSolver()
        solver.add_clause([])
        assert solver.solve() is None

    def test_zero_literal_rejected(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            SATSolver().add_clause([0])

    def test_pigeonhole_2_into_1_unsat(self):
        solver = SATSolver()
        # Two pigeons, one hole.
        solver.add_clauses([[1], [2], [-1, -2]])
        assert solver.solve() is None

    def test_phase_bias_false(self):
        solver = SATSolver()
        solver.add_clause([1, 2])
        model = solver.solve()
        # Exactly one variable should be forced true, the other left false.
        assert sum(1 for value in model.values() if value) <= 2
        assert check_model([[1, 2]], model)

    def test_default_phase_true(self):
        solver = SATSolver(default_phase=True)
        solver.add_clause([1, 2])
        model = solver.solve()
        assert check_model([[1, 2]], model)

    def test_incremental_clause_addition(self):
        solver = SATSolver()
        solver.add_clause([1, 2])
        model = solver.solve()
        assert check_model([[1, 2]], model)
        solver.add_clause([-1])
        model = solver.solve()
        assert model[2] is True and model[1] is False
        solver.add_clause([-2])
        assert solver.solve() is None

    def test_stats_accumulate(self):
        solver = SATSolver()
        solver.add_clauses([[1, 2], [-1, 2], [1, -2], [-1, -2, 3]])
        solver.solve()
        assert solver.stats.solve_calls == 1
        assert solver.stats.propagations > 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_3cnf(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(2, 24)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            clause = []
            for _ in range(size):
                v = rng.randint(1, num_vars)
                clause.append(v if rng.random() < 0.5 else -v)
            clauses.append(clause)
        solver = SATSolver()
        solver.add_clauses(clauses)
        model = solver.solve()
        expected = brute_force_satisfiable(clauses, num_vars)
        if expected:
            assert model is not None
            assert check_model(clauses, model)
        else:
            assert model is None

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_random_cnf(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=7))
        literals = st.integers(min_value=1, max_value=num_vars).flatmap(
            lambda v: st.sampled_from([v, -v])
        )
        clauses = data.draw(
            st.lists(st.lists(literals, min_size=1, max_size=4), min_size=1, max_size=18)
        )
        solver = SATSolver()
        solver.add_clauses(clauses)
        model = solver.solve()
        expected = brute_force_satisfiable(clauses, num_vars)
        if expected:
            assert model is not None and check_model(clauses, model)
        else:
            assert model is None

    def test_repeat_solves_are_consistent(self):
        rng = random.Random(99)
        clauses = [[rng.choice([1, -1, 2, -2, 3, -3, 4, -4]) for _ in range(3)] for _ in range(15)]
        solver = SATSolver()
        solver.add_clauses(clauses)
        first = solver.solve()
        second = solver.solve()
        assert (first is None) == (second is None)
        if first is not None:
            assert check_model(clauses, second)
