"""Tests for the Tseitin encoding and the sequential-counter cardinality ladder."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.provenance import FALSE, TRUE, band, bnot, bor, var
from repro.solver.cnf import CNF, VariablePool, assert_expression, sequential_counter, tseitin
from repro.solver.sat import SATSolver


class TestVariablePool:
    def test_stable_mapping(self):
        pool = VariablePool()
        assert pool.variable("t1") == pool.variable("t1")
        assert pool.variable("t2") != pool.variable("t1")
        assert pool.name_of(pool.variable("t1")) == "t1"

    def test_fresh_variables_are_auxiliary(self):
        pool = VariablePool()
        pool.variable("t1")
        aux = pool.fresh()
        assert aux not in pool.named_variables().values()
        assert pool.named_variables() == {"t1": 1}

    def test_lookup_missing(self):
        assert VariablePool().lookup("nope") is None


def _solve(cnf: CNF):
    solver = SATSolver()
    solver.add_clauses(cnf.clauses)
    return solver.solve()


def _models_of_expression(expression, names):
    """All satisfying assignments of the expression over ``names`` (brute force)."""
    models = set()
    for bits in itertools.product((False, True), repeat=len(names)):
        assignment = dict(zip(names, bits))
        if expression.evaluate(assignment):
            models.add(tuple(sorted(n for n, b in assignment.items() if b)))
    return models


class TestTseitin:
    def test_assert_simple_expression(self):
        cnf = CNF()
        assert_expression(band(var("a"), bor(var("b"), var("c"))), cnf)
        model = _solve(cnf)
        assert model is not None
        assert model[cnf.pool.variable("a")]

    def test_unsatisfiable_expression(self):
        cnf = CNF()
        assert_expression(band(var("a"), bnot(var("a"))), cnf)
        assert _solve(cnf) is None

    def test_constants(self):
        cnf = CNF()
        assert_expression(bor(FALSE, TRUE), cnf)
        assert _solve(cnf) is not None

    def test_empty_clause_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([])

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_tseitin_preserves_models(self, data):
        names = ["a", "b", "c", "d"]
        leaf = st.sampled_from([var(n) for n in names])
        expr_strategy = st.recursive(
            leaf,
            lambda children: st.one_of(
                st.builds(lambda xs: band(*xs), st.lists(children, min_size=1, max_size=3)),
                st.builds(lambda xs: bor(*xs), st.lists(children, min_size=1, max_size=3)),
                st.builds(bnot, children),
            ),
            max_leaves=10,
        )
        expression = data.draw(expr_strategy)
        cnf = CNF()
        assert_expression(expression, cnf)
        # Enumerate the CNF models projected onto the named variables and
        # compare against the expression's models.
        name_vars = {name: cnf.pool.lookup(name) for name in names}
        expected = _models_of_expression(expression, names)
        solver_models = set()
        solver = SATSolver()
        solver.add_clauses(cnf.clauses)
        for _ in range(2 ** len(names) + 2):
            model = solver.solve()
            if model is None:
                break
            projected = tuple(
                sorted(
                    name
                    for name, idx in name_vars.items()
                    if idx is not None and model.get(idx, False)
                )
            )
            solver_models.add(projected)
            blocking = []
            for name, idx in name_vars.items():
                if idx is None:
                    continue
                blocking.append(-idx if model.get(idx, False) else idx)
            if not blocking:
                break
            solver.add_clause(blocking)
        if expected:
            # Every projected model found by the solver must satisfy the
            # expression, and at least one expected model must be found.
            free_names = [n for n in names if name_vars[n] is None]
            for projected in solver_models:
                base = {name: name in projected for name in names}
                assert any(
                    expression.evaluate({**base, **dict(zip(free_names, bits))})
                    for bits in itertools.product((False, True), repeat=len(free_names))
                )
            assert solver_models
        else:
            assert not solver_models


class TestSequentialCounter:
    def _count_reachable(self, n, bound, force_true):
        cnf = CNF()
        variables = [cnf.pool.variable(f"x{i}") for i in range(n)]
        outputs = sequential_counter(cnf, variables, width=n)
        solver = SATSolver()
        solver.add_clauses(cnf.clauses)
        solver.add_clause([-outputs[bound]])
        for index in force_true:
            solver.add_clause([variables[index]])
        return solver.solve()

    def test_at_most_k_allows_k(self):
        assert self._count_reachable(5, 2, force_true=[0, 1]) is not None

    def test_at_most_k_blocks_k_plus_one(self):
        assert self._count_reachable(5, 2, force_true=[0, 1, 2]) is None

    def test_at_most_zero(self):
        assert self._count_reachable(4, 0, force_true=[]) is not None
        assert self._count_reachable(4, 0, force_true=[3]) is None

    def test_width_validation(self):
        with pytest.raises(SolverError):
            sequential_counter(CNF(), [1, 2], width=0)

    def test_empty_variable_list(self):
        assert sequential_counter(CNF(), [], width=3) == []

    @pytest.mark.parametrize("n,k", [(4, 1), (5, 3), (6, 2)])
    def test_exhaustive_bound_check(self, n, k):
        # For every subset forced true, at-most-k must be satisfiable iff |subset| <= k.
        for bits in itertools.product((0, 1), repeat=n):
            force = [i for i, bit in enumerate(bits) if bit]
            result = self._count_reachable(n, k, force)
            if len(force) <= k:
                assert result is not None
            else:
                assert result is None
