"""Provenance through the optimized plan path: bit-identity and plan shape.

PR 1 routed set-semantics evaluation through the logical→optimized→physical
plan engine; provenance stayed on the exact (unoptimized) plan.  Now the
:class:`~repro.engine.domains.ProvenanceDomain` runs on the *logically
optimized* plan — selection pushdown plus the session's structural plan and
result caches — while keeping the deterministic operator order (the hash-join
build-side choice is skipped because it reorders annotation folding).

These tests pin the load-bearing claim: on every course/beers/TPC-H workload
query the optimized-path annotations are **bit-identical** — same candidate
rows, structurally equal Boolean expressions, identical rendering — to both
the pre-engine reference evaluator and the engine's exact mode.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    beers_instance,
    toy_beers_instance,
    toy_university_instance,
    tpch_instance,
    university_instance,
)
from repro.engine.logical import FilterOp, JoinOp, plan_operators
from repro.engine.reference import ReferenceProvenanceEvaluator
from repro.engine.session import EngineSession
from repro.parser import parse_query
from repro.ra.analysis import profile
from repro.workload import beers_problems, course_questions, tpch_queries


def _workload_cases():
    cases = []
    university = university_instance(40, seed=7)
    toy_university = toy_university_instance()
    for question in course_questions():
        for index, query in enumerate(
            (question.correct_query,) + question.handwritten_wrong_queries
        ):
            cases.append((f"course-{question.key}-{index}", university, query))
            cases.append((f"course-toy-{question.key}-{index}", toy_university, query))
    beers = beers_instance(num_drinkers=25, num_bars=8, num_beers=6, seed=11)
    toy_beers = toy_beers_instance()
    for problem in beers_problems():
        for index, query in enumerate(
            (problem.correct_query,) + problem.handwritten_wrong_queries
        ):
            cases.append((f"beers-{problem.key}-{index}", beers, query))
            cases.append((f"beers-toy-{problem.key}-{index}", toy_beers, query))
    tpch = tpch_instance(scale=0.05, seed=3)
    for tpch_query in tpch_queries():
        for index, query in enumerate(
            (tpch_query.correct_query,) + tpch_query.wrong_queries
        ):
            cases.append((f"tpch-{tpch_query.key}-{index}", tpch, query))
    # Boolean how-provenance does not cover aggregation.
    return [
        case for case in cases if not profile(case[2]).uses_aggregate
    ]


_CASES = _workload_cases()

#: One shared session per instance: the point of the new path is that these
#: annotations ride the same warm caches as grading.
_SESSIONS: dict[int, EngineSession] = {}


def _session(instance) -> EngineSession:
    session = _SESSIONS.get(id(instance))
    if session is None:
        session = _SESSIONS[id(instance)] = EngineSession(instance)
    return session


@pytest.mark.parametrize("label,instance,query", _CASES, ids=[c[0] for c in _CASES])
def test_optimized_annotations_bit_identical_to_reference(label, instance, query):
    """Optimized-path provenance == pre-engine reference evaluator, bit for bit."""
    reference = ReferenceProvenanceEvaluator(instance, {}).annotated(query)
    _, optimized = _session(instance).annotated_rows(query)
    assert set(optimized) == set(reference), f"candidate rows differ on {label}"
    for row, expression in reference.items():
        assert optimized[row] == expression, (
            f"annotation differs on {label} for row {row!r}:\n"
            f"  reference: {expression}\n"
            f"  optimized: {optimized[row]}"
        )
        assert str(optimized[row]) == str(expression)


@pytest.mark.parametrize("label,instance,query", _CASES, ids=[c[0] for c in _CASES])
def test_optimized_annotations_bit_identical_to_exact_mode(label, instance, query):
    """The logical plan flavour matches exact mode on the same session."""
    session = _session(instance)
    _, optimized = session.annotated_rows(query)
    _, exact = session.annotated_rows(query, exact=True)
    assert optimized == exact


def test_provenance_plan_applies_selection_pushdown(toy_university):
    """The provenance plan really is optimized: the filter sits below the join."""
    query = parse_query(
        "\\select_{r.dept = 'CS'} ("
        "(\\rename_{prefix: s} Student) \\join_{s.name = r.name} "
        "(\\rename_{prefix: r} Registration))"
    )
    session = EngineSession(toy_university)
    session.annotated_rows(query)
    logical = session._plans[("logical", session._keys.key(query))]
    operators = plan_operators(logical)
    join_positions = [i for i, op in enumerate(operators) if isinstance(op, JoinOp)]
    filter_positions = [i for i, op in enumerate(operators) if isinstance(op, FilterOp)]
    assert join_positions and filter_positions
    assert min(filter_positions) > min(join_positions), (
        "selection was not pushed below the join in the provenance plan"
    )
    # ... while the operator order stays historical (no build-side flipping).
    assert all(not op.build_left for op in operators if isinstance(op, JoinOp))


def test_provenance_results_are_memoised_across_repeats(toy_university):
    query = parse_query("\\select_{major = 'CS'} Student")
    session = EngineSession(toy_university)
    session.annotated_rows(query)
    before = session.cache_info()
    session.annotated_rows(query)
    after = session.cache_info()
    assert after["result_hits"] > before["result_hits"]
    assert after["plan_hits"] > before["plan_hits"]
