"""Tests for relations, database instances, subinstances and result sets."""

import pytest

from repro.catalog import (
    DatabaseInstance,
    DatabaseSchema,
    DataType,
    RelationSchema,
    ResultSet,
    split_tid,
)
from repro.datagen import toy_university_instance, university_schema
from repro.errors import SchemaError, TypeMismatchError, UnknownRelationError


@pytest.fixture
def simple_db() -> DatabaseInstance:
    schema = DatabaseSchema.of(
        [RelationSchema.of("R", [("a", DataType.INT), ("b", DataType.STRING)])]
    )
    return DatabaseInstance(schema)


class TestRelation:
    def test_insert_assigns_sequential_tids(self, simple_db):
        relation = simple_db.relation("R")
        assert relation.insert((1, "x")) == "R:1"
        assert relation.insert((2, "y")) == "R:2"

    def test_insert_coerces_types(self, simple_db):
        relation = simple_db.relation("R")
        with pytest.raises(TypeMismatchError):
            relation.insert(("not-an-int", "x"))

    def test_insert_wrong_arity(self, simple_db):
        with pytest.raises(SchemaError):
            simple_db.relation("R").insert((1,))

    def test_duplicate_tid_rejected(self, simple_db):
        relation = simple_db.relation("R")
        relation.insert((1, "x"), tid="R:7")
        with pytest.raises(SchemaError):
            relation.insert((2, "y"), tid="R:7")

    def test_duplicate_values_get_distinct_tids(self, simple_db):
        relation = simple_db.relation("R")
        t1 = relation.insert((1, "x"))
        t2 = relation.insert((1, "x"))
        assert t1 != t2
        assert len(relation) == 2
        assert len(relation.value_set()) == 1

    def test_subset(self, simple_db):
        relation = simple_db.relation("R")
        tids = relation.insert_all([(1, "x"), (2, "y"), (3, "z")])
        sub = relation.subset(tids[:2])
        assert len(sub) == 2
        assert sub.row(tids[0]) == (1, "x")

    def test_subset_unknown_tid(self, simple_db):
        with pytest.raises(KeyError):
            simple_db.relation("R").subset(["R:99"])

    def test_to_dicts(self, simple_db):
        simple_db.relation("R").insert((1, "x"))
        assert simple_db.relation("R").to_dicts() == [{"a": 1, "b": "x"}]


class TestDatabaseInstance:
    def test_toy_instance_size(self):
        instance = toy_university_instance()
        assert instance.total_size() == 11
        assert len(instance.relation("Student")) == 3
        assert len(instance.relation("Registration")) == 8

    def test_lookup_by_tid(self):
        instance = toy_university_instance()
        assert instance.lookup("Student:1") == ("Mary", "CS")

    def test_split_tid(self):
        assert split_tid("Registration:4") == ("Registration", "4")
        with pytest.raises(ValueError):
            split_tid("garbage")

    def test_subinstance_keeps_tids(self):
        instance = toy_university_instance()
        sub = instance.subinstance({"Student:1", "Registration:1"})
        assert sub.total_size() == 2
        assert sub.lookup("Student:1") == ("Mary", "CS")

    def test_subinstance_unknown_relation(self):
        instance = toy_university_instance()
        with pytest.raises(UnknownRelationError):
            instance.subinstance({"Unknown:1"})

    def test_subinstance_is_independent_copy(self):
        instance = toy_university_instance()
        sub = instance.subinstance({"Student:1"})
        sub.relation("Student").insert(("Zoe", "ART"))
        assert len(instance.relation("Student")) == 3

    def test_from_dict(self):
        instance = DatabaseInstance.from_dict(
            university_schema(), {"Student": [("A", "CS")], "Registration": []}
        )
        assert instance.total_size() == 1

    def test_constraint_checking(self):
        instance = toy_university_instance()
        assert instance.satisfies_constraints()
        # Danging registration violates the foreign key.
        instance.relation("Registration").insert(("Ghost", "101", "CS", 80))
        assert not instance.satisfies_constraints()

    def test_all_tids(self):
        instance = toy_university_instance()
        assert len(instance.all_tids()) == 11
        assert "Registration:8" in instance.all_tids()


class TestResultSet:
    def test_set_semantics(self):
        schema = RelationSchema.of("R", [("a", DataType.INT)])
        result = ResultSet.of(schema, [(1,), (1,), (2,)])
        assert len(result) == 2
        assert (1,) in result

    def test_same_rows_ignores_schema_names(self):
        r1 = ResultSet.of(RelationSchema.of("A", [("x", DataType.INT)]), [(1,)])
        r2 = ResultSet.of(RelationSchema.of("B", [("y", DataType.INT)]), [(1,)])
        assert r1.same_rows(r2)

    def test_minus_and_symmetric_difference(self):
        schema = RelationSchema.of("R", [("a", DataType.INT)])
        r1 = ResultSet.of(schema, [(1,), (2,)])
        r2 = ResultSet.of(schema, [(2,), (3,)])
        assert r1.minus(r2).rows == frozenset({(1,)})
        assert r1.symmetric_difference(r2).rows == frozenset({(1,), (3,)})

    def test_sorted_rows_deterministic(self):
        schema = RelationSchema.of("R", [("a", DataType.INT)])
        result = ResultSet.of(schema, [(3,), (1,), (2,)])
        assert result.sorted_rows() == [(1,), (2,), (3,)]

    def test_to_dicts(self):
        schema = RelationSchema.of("R", [("a", DataType.INT), ("b", DataType.STRING)])
        result = ResultSet.of(schema, [(1, "x")])
        assert result.to_dicts() == [{"a": 1, "b": "x"}]
