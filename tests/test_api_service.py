"""Tests for the GradingService: submit, batches, error kinds, adapters."""

import pytest

from repro.api import GradedSubmission, GradingService, SubmissionRequest
from repro.datagen import toy_university_instance
from repro.errors import ReproError
from repro.ratest import RATest

CORRECT = "\\project_{name} \\select_{dept = 'ECON'} Registration"
WRONG = "\\project_{name} Registration"


@pytest.fixture(scope="module")
def service():
    return GradingService.for_instance(toy_university_instance(), name="toy")


class TestSubmit:
    def test_correct_submission(self, service):
        graded = service.submit(SubmissionRequest(CORRECT, CORRECT, id="a/q1"))
        assert graded.correct
        assert graded.id == "a/q1"
        assert graded.dataset == "toy"
        assert graded.outcome.error is None and graded.outcome.error_kind is None

    def test_wrong_submission_gets_counterexample(self, service):
        graded = service.submit(SubmissionRequest(CORRECT, WRONG))
        assert not graded.correct
        report = graded.outcome.report
        assert report is not None and report.counterexample_size > 0

    def test_original_dsl_text_is_preserved_in_report(self, service):
        graded = service.submit(SubmissionRequest(CORRECT, WRONG))
        report = graded.outcome.report
        assert report.correct_query_text == CORRECT
        assert report.test_query_text == WRONG

    def test_requests_accepted_as_plain_dicts(self, service):
        graded = service.submit({"correct": CORRECT, "test": CORRECT, "id": "d1"})
        assert graded.correct and graded.id == "d1"
        with pytest.raises(ReproError, match="correct_query"):
            service.submit({"test": CORRECT})

    def test_explain_false_skips_counterexample(self, service):
        graded = service.submit(SubmissionRequest(CORRECT, WRONG, explain=False))
        assert not graded.correct
        assert graded.outcome.report is None and graded.outcome.error is None
        assert "different result" in graded.outcome.render()

    def test_check_returns_bare_outcome(self, service):
        outcome = service.check(CORRECT, WRONG)
        assert not outcome.correct and outcome.report is not None


class TestErrorKinds:
    def test_parse_error(self, service):
        outcome = service.submit(SubmissionRequest(CORRECT, "\\select_{oops")).outcome
        assert outcome.error_kind == "parse_error"
        assert outcome.error is not None

    def test_reference_errors_are_operational_not_submission_level(self, service):
        # A broken reference query is the grader's fault: the message says
        # which side failed and the kind is operational, so the batch CLI
        # exits nonzero instead of silently failing every student.
        outcome = service.submit(SubmissionRequest("\\select_{oops", CORRECT)).outcome
        assert outcome.error_kind == "invalid_request"
        assert outcome.error.startswith("reference query:")

    def test_schema_error(self, service):
        outcome = service.submit(
            SubmissionRequest(CORRECT, "\\project_{nonexistent} Student")
        ).outcome
        assert outcome.error_kind == "schema_error"

    def test_no_counterexample_kind_for_explain_on_agreeing_pair(self, service):
        from repro.api import explain_queries
        from repro.errors import CounterexampleError

        session = service.session_for()
        with pytest.raises(CounterexampleError):
            explain_queries(session, CORRECT, CORRECT)

    def test_invalid_algorithm_is_invalid_request(self, service):
        outcome = service.submit(
            SubmissionRequest(CORRECT, WRONG, algorithm="alchemy")
        ).outcome
        assert outcome.error_kind == "invalid_request"

    def test_unknown_dataset_is_invalid_request(self, service):
        outcome = service.submit(SubmissionRequest(CORRECT, WRONG, dataset="nope")).outcome
        assert outcome.error_kind == "invalid_request"


class TestSubmitBatch:
    def test_batch_preserves_input_order_and_ids(self, service):
        requests = [
            SubmissionRequest(CORRECT, CORRECT, id="s0"),
            SubmissionRequest(CORRECT, WRONG, id="s1"),
            SubmissionRequest(CORRECT, "\\select_{oops", id="s2"),
        ]
        graded = service.submit_batch(requests)
        assert [g.id for g in graded] == ["s0", "s1", "s2"]
        assert [g.correct for g in graded] == [True, False, False]

    def test_deduplication_shares_outcomes(self, service):
        requests = [SubmissionRequest(CORRECT, WRONG, id=f"s{i}") for i in range(4)]
        graded = service.submit_batch(requests)
        assert len({id(g.outcome) for g in graded}) == 1
        assert [g.id for g in graded] == ["s0", "s1", "s2", "s3"]
        individual = service.submit_batch(requests, deduplicate=False)
        assert len({id(g.outcome) for g in individual}) == 4
        assert [g.outcome.to_dict(include_timings=False) for g in graded] == [
            g.outcome.to_dict(include_timings=False) for g in individual
        ]

    def test_pooled_batch_matches_serial(self, service):
        requests = [
            SubmissionRequest(CORRECT, WRONG, id="w"),
            SubmissionRequest(CORRECT, CORRECT, id="c"),
            SubmissionRequest(CORRECT, "\\project_{oops} Student", id="e"),
        ]
        serial = service.submit_batch(requests, workers=1)
        pooled = service.submit_batch(requests, workers=4)
        assert [g.to_dict(include_timings=False) for g in serial] == [
            g.to_dict(include_timings=False) for g in pooled
        ]


class TestAdapters:
    def test_ratest_check_matches_service(self, service):
        tool = RATest(toy_university_instance())
        outcome = tool.check(CORRECT, WRONG)
        via_service = service.check(CORRECT, WRONG)
        assert outcome.to_dict(include_timings=False) == via_service.to_dict(
            include_timings=False
        )

    def test_ratest_check_preserves_original_text(self):
        tool = RATest(toy_university_instance())
        outcome = tool.check(CORRECT, WRONG)
        assert outcome.report.correct_query_text == CORRECT
        assert outcome.report.test_query_text == WRONG

    def test_graded_submission_round_trip(self, service):
        graded = service.submit(SubmissionRequest(CORRECT, WRONG, id="rt"))
        payload = graded.to_dict()
        again = GradedSubmission.from_dict(payload)
        assert again.to_dict() == payload

    def test_submission_request_round_trip(self):
        request = SubmissionRequest(
            CORRECT, WRONG, dataset="toy", id="x", algorithm="basic", explain=False
        )
        assert SubmissionRequest.from_dict(request.to_dict()) == request
