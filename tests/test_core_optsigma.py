"""Tests for the Optσ algorithm (Algorithm 2) on the running example and more."""

import pytest

from repro.core import find_smallest_witness, smallest_witness_optsigma
from repro.datagen import toy_university_instance, university_instance
from repro.errors import CounterexampleError
from repro.ra import evaluate, results_differ
from repro.theory import brute_force_smallest_counterexample
from repro.workload import course_questions


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


class TestRunningExample:
    def test_smallest_counterexample_has_three_tuples(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        assert result.size == 3
        assert result.optimal
        assert result.verified

    def test_counterexample_is_one_of_the_paper_solutions(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        # Example 2: {t1, t4, t5}, or Jesse with two of his three courses.
        mary = {"Student:1", "Registration:1", "Registration:2"}
        jesse_courses = {"Registration:6", "Registration:7", "Registration:8"}
        is_mary = result.tids == frozenset(mary)
        is_jesse = "Student:3" in result.tids and len(result.tids & jesse_courses) == 2
        assert is_mary or is_jesse

    def test_counterexample_distinguishes_queries(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        assert results_differ(example1_q1, example1_q2, result.counterexample)

    def test_matches_brute_force_optimum(self, instance, example1_q1, example1_q2):
        expected = brute_force_smallest_counterexample(example1_q1, example1_q2, instance)
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        assert result.size == len(expected)

    def test_symmetric_argument_order(self, instance, example1_q1, example1_q2):
        # The wrong query may be passed first; the witness target flips direction.
        result = smallest_witness_optsigma(example1_q2, example1_q1, instance)
        assert result.size == 3
        assert result.verified

    def test_identical_queries_raise(self, instance, example1_q1):
        with pytest.raises(CounterexampleError):
            smallest_witness_optsigma(example1_q1, example1_q1, instance)

    def test_timings_recorded(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        assert {"raw_eval", "provenance", "solver", "total"} <= set(result.timings)
        assert result.total_time() > 0

    def test_explicit_target_row(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(
            example1_q2, example1_q1, instance, target_row=("Jesse", "CS")
        )
        assert result.distinguishing_row == ("Jesse", "CS")
        assert "Student:3" in result.tids

    def test_no_pushdown_variant(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance, pushdown=False)
        assert result.size == 3
        assert result.algorithm == "optsigma-nopushdown"


class TestOnCourseWorkload:
    @pytest.mark.parametrize("question_index", range(8))
    def test_every_question_with_its_first_wrong_query(self, question_index):
        question = course_questions()[question_index]
        instance = university_instance(30, seed=13)
        wrong = question.handwritten_wrong_queries[0]
        if not results_differ(question.correct_query, wrong, instance):
            pytest.skip("wrong query not distinguishable on this instance")
        result = smallest_witness_optsigma(question.correct_query, wrong, instance)
        assert result.verified
        assert 1 <= result.size <= 8
        # The counterexample respects the schema's foreign keys.
        assert result.counterexample.satisfies_constraints()

    def test_find_smallest_witness_facade(self, instance, example1_q1, example1_q2):
        result = find_smallest_witness(example1_q1, example1_q2, instance)
        assert result.algorithm == "optsigma"
        assert result.size == 3


class TestCounterexampleProperties:
    def test_result_contains_query_outputs(self, instance, example1_q1, example1_q2):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        q1_rows = evaluate(example1_q1, result.counterexample)
        q2_rows = evaluate(example1_q2, result.counterexample)
        assert result.q1_rows.rows == q1_rows.rows
        assert result.q2_rows.rows == q2_rows.rows
        assert q1_rows.rows != q2_rows.rows

    def test_counterexample_tuples_come_from_original_instance(
        self, instance, example1_q1, example1_q2
    ):
        result = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        for tid in result.tids:
            assert result.counterexample.lookup(tid) == instance.lookup(tid)
