"""Tests for provenance-annotated evaluation, including the core semantic property.

The key property (used throughout the paper): for every candidate output row
``v`` with provenance ``Prv(v)`` computed over ``D`` and every subinstance
``D' ⊆ D``, ``v ∈ Q(D')`` iff ``Prv(v)`` is true under "tuple kept in D'".
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import toy_university_instance
from repro.errors import NotApplicableError
from repro.parser import parse_query
from repro.provenance import annotate, provenance_of
from repro.provenance.boolexpr import assignment_from_true_set
from repro.ra import Difference, count, evaluate, group_by, relation


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


# A small pool of structurally diverse SPJUD queries over the toy schema.
_QUERY_TEXTS = [
    "\\project_{name} \\select_{dept = 'CS'} Registration",
    "\\project_{name, major} Student",
    """
    \\project_{s.name -> name} (
      \\rename_{prefix: s} Student
      \\join_{s.name = r.name and r.dept = 'CS'}
      \\rename_{prefix: r} Registration
    )
    """,
    "(\\project_{name} Student) \\diff (\\project_{name} \\select_{dept = 'CS'} Registration)",
    "(\\project_{name} \\select_{dept = 'CS'} Registration) \\union "
    "(\\project_{name} \\select_{dept = 'ECON'} Registration)",
    "(\\project_{name} \\select_{dept = 'CS'} Registration) \\intersect "
    "(\\project_{name} \\select_{dept = 'ECON'} Registration)",
    """
    (\\project_{name} Student) \\diff (
      \\project_{name} (
        (\\project_{name} Student) \\cross (\\project_{course -> c} \\select_{dept = 'ECON'} Registration)
        \\diff
        (\\project_{name, course -> c} Registration)
      )
    )
    """,
]


@pytest.fixture(scope="module", params=range(len(_QUERY_TEXTS)))
def query(request):
    return parse_query(_QUERY_TEXTS[request.param])


class TestAnnotationBasics:
    def test_base_relation_annotation(self, instance):
        annotated = annotate(relation("Student"), instance)
        assert annotated.expression_for(("Mary", "CS")).variables() == {"Student:1"}

    def test_duplicate_values_become_disjunction(self):
        instance = toy_university_instance()
        instance.relation("Student").insert(("Mary", "CS"))  # duplicate values
        annotated = annotate(relation("Student"), instance)
        assert len(annotated.expression_for(("Mary", "CS")).variables()) == 2

    def test_equation_1_of_the_paper(self, instance, example1_q2):
        # Prv_{Q2(D)}(Mary, CS) = t1 t4 + t1 t5
        expression = provenance_of(example1_q2, instance, ("Mary", "CS"))
        assert expression.variables() == {"Student:1", "Registration:1", "Registration:2"}
        assert expression.evaluate(assignment_from_true_set({"Student:1", "Registration:1"}))
        assert not expression.evaluate(assignment_from_true_set({"Registration:1", "Registration:2"}))

    def test_example_2_1_difference_provenance(self, instance, example1_q1, example1_q2):
        # Prv_{(Q2 − Q1)(D)}(Mary, CS) simplifies to t1 t4 t5.
        expression = provenance_of(Difference(example1_q2, example1_q1), instance, ("Mary", "CS"))
        full = {"Student:1", "Registration:1", "Registration:2"}
        assert expression.evaluate(assignment_from_true_set(full))
        assert not expression.evaluate(assignment_from_true_set({"Student:1", "Registration:1"}))
        assert not expression.evaluate(assignment_from_true_set({"Student:1", "Registration:2"}))

    def test_unknown_row_maps_to_false(self, instance, example1_q2):
        annotated = annotate(example1_q2, instance)
        assert not annotated.expression_for(("Nobody", "CS")).evaluate(
            assignment_from_true_set(instance.all_tids())
        )

    def test_group_by_rejected(self, instance):
        with pytest.raises(NotApplicableError):
            annotate(group_by(relation("Registration"), ["name"], [count(None, "n")]), instance)

    def test_rows_on_full_instance_have_true_provenance(self, instance, query):
        annotated = annotate(query, instance)
        full_assignment = assignment_from_true_set(instance.all_tids())
        actual_rows = set(evaluate(query, instance).rows)
        for row, expression in annotated.items():
            assert expression.evaluate(full_assignment) == (row in actual_rows)


class TestSubinstanceProperty:
    """The central provenance correctness property, checked per query."""

    def _check(self, query, instance, kept_tids):
        annotated = annotate(query, instance)
        sub = instance.subinstance(kept_tids)
        actual = set(evaluate(query, sub).rows)
        assignment = assignment_from_true_set(kept_tids)
        candidate_rows = set(annotated.provenance)
        # No row outside the candidate set may ever appear.
        assert actual <= candidate_rows
        for row, expression in annotated.items():
            assert expression.evaluate(assignment) == (row in actual), (
                f"provenance mismatch for {row} with kept={sorted(kept_tids)}"
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_subinstances(self, instance, query, seed):
        rng = random.Random(seed)
        all_tids = sorted(instance.all_tids())
        kept = {tid for tid in all_tids if rng.random() < 0.55}
        self._check(query, instance, kept)

    def test_empty_subinstance(self, instance, query):
        self._check(query, instance, set())

    def test_full_subinstance(self, instance, query):
        self._check(query, instance, instance.all_tids())

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random_queries_and_subsets(self, data):
        instance = toy_university_instance()
        text = data.draw(st.sampled_from(_QUERY_TEXTS))
        query = parse_query(text)
        all_tids = sorted(instance.all_tids())
        kept = data.draw(st.sets(st.sampled_from(all_tids), max_size=len(all_tids)))
        self._check(query, instance, kept)
