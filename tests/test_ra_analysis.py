"""Tests for query class detection and complexity metrics (Table 1 machinery)."""

import pytest

from repro.parser import parse_query
from repro.ra import (
    QueryClass,
    difference,
    eq,
    equals_constant,
    group_by,
    count,
    natural_join,
    profile,
    project,
    relation,
    rename_prefix,
    select,
    spju_terminals,
    theta_join,
    union,
)
from repro.ra.analysis import differences_only_at_top, unions_after_joins
from repro.workload import course_questions


def _sj():
    return select(
        theta_join(
            rename_prefix(relation("Student"), "s"),
            rename_prefix(relation("Registration"), "r"),
            eq("s.name", "r.name"),
        ),
        equals_constant("r.dept", "CS"),
    )


class TestClassification:
    def test_sj(self):
        assert profile(_sj()).query_class is QueryClass.SJ

    def test_spu(self):
        expr = union(
            project(select(relation("Registration"), equals_constant("dept", "CS")), ["name"]),
            project(relation("Student"), ["name"]),
        )
        assert profile(expr).query_class is QueryClass.SPU

    def test_pj(self):
        expr = project(
            theta_join(
                rename_prefix(relation("Student"), "s"),
                rename_prefix(relation("Registration"), "r"),
                eq("s.name", "r.name"),
            ),
            ["s.name"],
        )
        assert profile(expr).query_class is QueryClass.PJ

    def test_spju(self):
        expr = project(_sj(), ["s.name"])
        assert profile(expr).query_class is QueryClass.SPJU

    def test_ju_star(self):
        left = union(relation("Student"), relation("Student"))
        expr = natural_join(left, relation("Student"))
        # Union appears below a join: NOT JU*.
        assert profile(expr).query_class is QueryClass.JU
        expr2 = union(natural_join(relation("Student"), relation("Student")), relation("Student"))
        assert profile(expr2).query_class is QueryClass.JU_STAR

    def test_spjud_star(self):
        expr = difference(project(_sj(), ["s.name"]), project(relation("Student"), ["name"]))
        assert profile(expr).query_class is QueryClass.SPJUD_STAR

    def test_spjud_general(self):
        inner = difference(project(relation("Student"), ["name"]), project(relation("Registration"), ["name"]))
        expr = project(natural_join(inner, relation("Student")), ["name"])
        assert profile(expr).query_class is QueryClass.SPJUD

    def test_aggregate_class(self):
        expr = group_by(relation("Registration"), ["name"], [count(None, "n")])
        assert profile(expr).query_class is QueryClass.AGGREGATE

    def test_course_questions_have_expected_classes(self):
        classes = {q.key: profile(q.correct_query).query_class for q in course_questions()}
        assert classes["q1"] is QueryClass.SPJU
        assert classes["q2"] is QueryClass.SPJUD_STAR
        assert classes["q6"] in (QueryClass.SPJUD, QueryClass.SPJUD_STAR)


class TestStructuralPredicates:
    def test_unions_after_joins(self):
        good = union(natural_join(relation("Student"), relation("Student")), relation("Student"))
        bad = natural_join(union(relation("Student"), relation("Student")), relation("Student"))
        assert unions_after_joins(good)
        assert not unions_after_joins(bad)

    def test_differences_only_at_top(self):
        top = difference(project(relation("Student"), ["name"]), project(relation("Registration"), ["name"]))
        assert differences_only_at_top(top)
        nested = project(
            natural_join(
                difference(project(relation("Student"), ["name"]), project(relation("Registration"), ["name"])),
                relation("Student"),
            ),
            ["name"],
        )
        assert not differences_only_at_top(nested)

    def test_spju_terminals(self):
        q = parse_query(
            "(\\project_{name} Student \\diff \\project_{name} Registration) "
            "\\diff \\project_{name} Student"
        )
        terminals = spju_terminals(q)
        assert len(terminals) == 3

    def test_terminals_of_difference_free_query(self):
        assert len(spju_terminals(_sj())) == 1


class TestMetricsAndFlags:
    def test_metrics(self):
        expr = difference(project(_sj(), ["s.name"]), project(relation("Student"), ["name"]))
        metrics = profile(expr)
        assert metrics.num_differences == 1
        assert metrics.num_joins == 1
        assert metrics.num_operators == expr.operator_count()
        assert metrics.height == expr.height()
        assert metrics.num_base_relations == 2

    def test_monotonicity(self):
        assert profile(_sj()).is_monotone
        expr = difference(project(relation("Student"), ["name"]), project(relation("Registration"), ["name"]))
        assert not profile(expr).is_monotone

    def test_polytime_flags_match_table1(self):
        assert profile(_sj()).polytime_combined_complexity
        pj = project(
            theta_join(
                rename_prefix(relation("Student"), "s"),
                rename_prefix(relation("Registration"), "r"),
                eq("s.name", "r.name"),
            ),
            ["s.name"],
        )
        assert profile(pj).polytime_data_complexity
        assert not profile(pj).polytime_combined_complexity
        nested = project(
            natural_join(
                difference(project(relation("Student"), ["name"]), project(relation("Registration"), ["name"])),
                relation("Student"),
            ),
            ["name"],
        )
        assert not profile(nested).polytime_data_complexity
