"""Tests for the Basic algorithm (Algorithm 1) and its Naive-M mode."""

import pytest

from repro.core import smallest_counterexample_basic, smallest_witness_optsigma
from repro.datagen import toy_university_instance, university_instance
from repro.errors import CounterexampleError
from repro.workload import course_questions


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


class TestBasicOptimal:
    def test_running_example(self, instance, example1_q1, example1_q2):
        result = smallest_counterexample_basic(example1_q1, example1_q2, instance)
        assert result.size == 3
        assert result.verified
        assert result.algorithm == "basic"

    def test_matches_optsigma_size(self, instance, example1_q1, example1_q2):
        basic = smallest_counterexample_basic(example1_q1, example1_q2, instance)
        optsigma = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        assert basic.size == optsigma.size

    def test_examines_both_directions(self, instance):
        # q3 correct vs wrong-0: the wrong query returns extra rows, so the
        # distinguishing tuples are in Q2 \ Q1.
        question = course_questions()[2]
        wrong = question.handwritten_wrong_queries[0]
        result = smallest_counterexample_basic(question.correct_query, wrong, instance)
        assert result.verified

    def test_identical_queries_raise(self, instance, example1_q1):
        with pytest.raises(CounterexampleError):
            smallest_counterexample_basic(example1_q1, example1_q1, instance)

    def test_max_rows_cap(self, instance, example1_q1, example1_q2):
        result = smallest_counterexample_basic(example1_q1, example1_q2, instance, max_rows=1)
        assert result.verified

    def test_global_minimum_across_tuples(self):
        # On a slightly larger instance the per-tuple witnesses differ in size;
        # Basic must return the global minimum.
        instance = university_instance(25, seed=3)
        question = course_questions()[1]  # "exactly one CS course"
        wrong = question.handwritten_wrong_queries[0]
        basic = smallest_counterexample_basic(question.correct_query, wrong, instance)
        optsigma_sizes = []
        from repro.core.common import symmetric_difference_rows

        only1, only2 = symmetric_difference_rows(question.correct_query, wrong, instance)
        for row in (only1 + only2)[:6]:
            try:
                result = smallest_witness_optsigma(
                    question.correct_query, wrong, instance, target_row=row
                )
                optsigma_sizes.append(result.size)
            except Exception:
                continue
        if optsigma_sizes:
            assert basic.size <= min(optsigma_sizes)


class TestBasicNaive:
    def test_enumerate_mode_returns_valid_counterexample(self, instance, example1_q1, example1_q2):
        result = smallest_counterexample_basic(
            example1_q1, example1_q2, instance, mode="enumerate", max_trials=16
        )
        assert result.verified
        assert result.algorithm == "basic-naive-16"
        assert result.size >= 3

    def test_naive_never_smaller_than_optimal(self, instance, example1_q1, example1_q2):
        optimal = smallest_counterexample_basic(example1_q1, example1_q2, instance)
        naive = smallest_counterexample_basic(
            example1_q1, example1_q2, instance, mode="enumerate", max_trials=4
        )
        assert naive.size >= optimal.size

    def test_more_trials_do_not_hurt(self, instance, example1_q1, example1_q2):
        few = smallest_counterexample_basic(
            example1_q1, example1_q2, instance, mode="enumerate", max_trials=1
        )
        many = smallest_counterexample_basic(
            example1_q1, example1_q2, instance, mode="enumerate", max_trials=64
        )
        assert many.size <= few.size
