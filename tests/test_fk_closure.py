"""Foreign-key closure of witnesses — every algorithm, chained references.

Satellite of the counterexample-hardening PR: every algorithm registered in
:data:`repro.core.finder.ALGORITHMS` must return witnesses closed under the
instance's FK constraints, *including chains* (keeping an Enrollment drags in
its Course, which drags in its Department).  The schema here is built so the
smallest evaluation-only witness would violate referential integrity — only
FK-aware solving produces the right answer.
"""

from __future__ import annotations

import pytest

from repro.catalog.constraints import ForeignKeyConstraint
from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import Attribute, DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.core.finder import ALGORITHMS
from repro.core.verify import verify_counterexample
from repro.engine.session import EngineSession
from repro.errors import NotApplicableError
from repro.parser import parse_query


def _chained_schema() -> DatabaseSchema:
    return DatabaseSchema.of(
        [
            RelationSchema.of("Department", [Attribute("dname", DataType.STRING)]),
            RelationSchema.of(
                "Course",
                [
                    Attribute("cid", DataType.STRING),
                    Attribute("dname", DataType.STRING),
                ],
            ),
            RelationSchema.of(
                "Enrollment",
                [
                    Attribute("student", DataType.STRING),
                    Attribute("cid", DataType.STRING),
                    Attribute("credits", DataType.INT),
                ],
            ),
        ],
        [
            ForeignKeyConstraint("Course", ("dname",), "Department", ("dname",)),
            ForeignKeyConstraint("Enrollment", ("cid",), "Course", ("cid",)),
        ],
    )


@pytest.fixture(scope="module")
def chained_instance() -> DatabaseInstance:
    instance = DatabaseInstance(_chained_schema())
    instance.relation("Department").insert_all([("CS",), ("ECON",)])
    instance.relation("Course").insert_all(
        [("216", "CS"), ("230", "CS"), ("208D", "ECON")]
    )
    instance.relation("Enrollment").insert_all(
        [
            ("Mary", "216", 4),
            ("Mary", "208D", 3),
            ("John", "230", 4),
            ("Jesse", "216", 3),
        ]
    )
    assert instance.satisfies_constraints()
    return instance


def _spjud_pair():
    q1 = parse_query("\\project_{student} (\\select_{credits >= 4} Enrollment)")
    q2 = parse_query("\\project_{student} (Enrollment)")
    return q1, q2


def _aggregate_pair():
    q1 = parse_query(
        "\\select_{n >= 2} (\\aggr_{group: student ; count(*) -> n} (Enrollment))"
    )
    q2 = parse_query(
        "\\select_{n >= 1} (\\aggr_{group: student ; count(*) -> n} (Enrollment))"
    )
    return q1, q2


def _fk_closed(instance: DatabaseInstance, tids: frozenset[str]) -> bool:
    for constraint in instance.schema.constraints:
        if not isinstance(constraint, ForeignKeyConstraint):
            continue
        implications = constraint.implications(instance)
        for child in tids:
            parents = implications.get(child)
            if parents is not None and not any(p in tids for p in parents):
                return False
    return True


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_every_algorithm_returns_fk_closed_witnesses(name, chained_instance):
    session = EngineSession(chained_instance)
    q1, q2 = _aggregate_pair() if name.startswith("agg-") else _spjud_pair()
    try:
        result = ALGORITHMS[name](q1, q2, chained_instance, session=session)
    except NotApplicableError:
        pytest.skip(f"{name} does not apply to this pair")
    assert result.verified, name
    assert _fk_closed(chained_instance, result.tids), (
        f"{name} returned a witness violating FK closure: {sorted(result.tids)}"
    )
    report = verify_counterexample(
        q1, q2, chained_instance, result, session=session
    )
    assert report.valid, (name, report.issues)
    assert report.checks["fk_closed"] == "ok"


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_chained_references_are_followed_to_the_root(name, chained_instance):
    """Any witness keeping an Enrollment keeps a Course *and* its Department."""
    session = EngineSession(chained_instance)
    q1, q2 = _aggregate_pair() if name.startswith("agg-") else _spjud_pair()
    try:
        result = ALGORITHMS[name](q1, q2, chained_instance, session=session)
    except NotApplicableError:
        pytest.skip(f"{name} does not apply to this pair")
    kept_enrollments = {t for t in result.tids if t.startswith("Enrollment:")}
    assert kept_enrollments, f"{name} found a witness without any Enrollment tuple"
    assert any(t.startswith("Course:") for t in result.tids), name
    assert any(t.startswith("Department:") for t in result.tids), name


def test_closure_prefers_supportable_parents_over_dangling_ones():
    """A dangling parent must not poison the closure when a clean twin exists.

    ``P`` holds two rows with the same key ``v`` — one whose own reference is
    dangling, one supported — and the child references ``v``.  The greedy
    closure used to pick the first parent unconditionally, making the
    enumeration-based algorithms reject (or mis-rank) witnesses the solver
    happily proves admissible through the clean parent.
    """
    from repro.catalog.constraints import close_under_foreign_keys

    schema = DatabaseSchema.of(
        [
            RelationSchema.of("G", [Attribute("g", DataType.STRING)]),
            RelationSchema.of(
                "P", [Attribute("p", DataType.STRING), Attribute("g", DataType.STRING)]
            ),
            RelationSchema.of(
                "C", [Attribute("c", DataType.STRING), Attribute("p", DataType.STRING)]
            ),
        ],
        [
            ForeignKeyConstraint("C", ("p",), "P", ("p",)),
            ForeignKeyConstraint("P", ("g",), "G", ("g",)),
        ],
    )
    instance = DatabaseInstance(schema)
    instance.relation("G").insert_all([("g1",)])
    instance.relation("P").insert_all([("v", "DEAD"), ("v", "g1")])  # P:1 dangling
    instance.relation("C").insert_all([("c1", "v")])

    closed = close_under_foreign_keys(instance, {"C:1"})
    assert "P:2" in closed and "P:1" not in closed

    session = EngineSession(instance)
    q1 = parse_query("\\project_{c} (C)")
    q2 = parse_query("\\project_{c} (\\select_{c = 'nope'} (C))")
    for name in ("optsigma", "basic", "polytime-dnf", "spjud-star"):
        result = ALGORITHMS[name](q1, q2, instance, session=session)
        assert result.tids == frozenset({"C:1", "P:2", "G:1"}), (name, result.tids)
        report = verify_counterexample(q1, q2, instance, result, session=session)
        assert report.valid, (name, report.issues)


def test_verifier_rejects_witness_with_broken_chain(chained_instance):
    import dataclasses

    session = EngineSession(chained_instance)
    q1, q2 = _spjud_pair()
    result = ALGORITHMS["optsigma"](q1, q2, chained_instance, session=session)
    # Drop the Department root of the chain: Course keeps a dangling reference.
    broken = frozenset(t for t in result.tids if not t.startswith("Department:"))
    forged = dataclasses.replace(
        result, tids=broken, counterexample=chained_instance.subinstance(broken)
    )
    report = verify_counterexample(q1, q2, chained_instance, forged, session=session)
    assert not report.valid
    assert report.checks["fk_closed"] == "failed"
