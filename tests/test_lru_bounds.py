"""Bounded caches for long-lived servers: LRU semantics and counters."""

from __future__ import annotations

from repro.api.registry import DatasetRegistry
from repro.engine.session import EngineSession
from repro.lru import LRUCache
from repro.parser.ra_parser import parse_query


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refresh "a" → "b" is now oldest
        cache["c"] = 3
        assert "b" not in cache
        assert set(cache.keys()) == {"a", "c"}
        assert cache.evictions == 1

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache["a"] = 1
        assert cache.get("a") == 1
        assert cache.get("nope") is None
        assert cache.get("nope", record=False) is None  # double-check: uncounted
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}

    def test_unbounded_when_max_entries_is_none(self):
        cache = LRUCache(None)
        for index in range(100):
            cache[index] = index
        assert len(cache) == 100
        assert cache.evictions == 0

    def test_clear_keeps_cumulative_counters(self):
        cache = LRUCache(1)
        cache["a"] = 1
        cache["b"] = 1
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 1
        assert cache.hits == 1


class TestSessionResultMemoBound:
    def test_memo_is_bounded_and_counts_evictions(self, toy_university):
        session = EngineSession(toy_university, max_cached_results=2)
        queries = [
            parse_query("Student"),
            parse_query("Registration"),
            parse_query("\\project_{name} Student"),
            parse_query("\\project_{name} Registration"),
        ]
        for query in queries:
            session.evaluate(query)
        info = session.cache_info()
        assert info["cached_results"] <= 2
        assert info["result_evictions"] >= 1
        assert info["result_misses"] >= len(queries)

    def test_warm_hits_are_counted(self, toy_university):
        session = EngineSession(toy_university)
        query = parse_query("\\project_{name} Student")
        session.evaluate(query)
        before = session.cache_info()["result_hits"]
        session.evaluate(query)
        assert session.cache_info()["result_hits"] > before

    def test_eviction_only_costs_recomputation(self, toy_university):
        session = EngineSession(toy_university, max_cached_results=1)
        query1 = parse_query("\\project_{name} Student")
        query2 = parse_query("\\project_{name} Registration")
        first = session.evaluate(query1)
        session.evaluate(query2)  # evicts query1's rows
        again = session.evaluate(query1)  # recomputed, not wrong
        assert again.same_rows(first)

    def test_warmup_hook_populates_caches(self, toy_university):
        session = EngineSession(toy_university)
        warmed = session.warmup(
            ["\\project_{name} Student", "\\select_{oops", "Registration"]
        )
        assert warmed == 2  # the unparsable query is skipped, not fatal
        assert session.cache_info()["cached_results"] >= 2


class TestRegistryHandleCounters:
    def test_resolve_counts_hits_misses_evictions(self):
        registry = DatasetRegistry(max_handles=2)
        registry.resolve("toy-university")
        registry.resolve("toy-university")  # warm hit
        registry.resolve("toy-beers")
        registry.resolve("university:5")  # evicts toy-university
        info = registry.cache_info()
        assert info["resolved_handles"] == 2
        assert info["handle_hits"] == 1
        assert info["handle_misses"] == 3
        assert info["handle_evictions"] == 1

    def test_max_handles_knob_is_live(self):
        registry = DatasetRegistry()
        assert registry.max_handles == DatasetRegistry.DEFAULT_MAX_HANDLES
        registry.max_handles = 1
        registry.resolve("toy-university")
        registry.resolve("toy-beers")
        assert registry.cache_info()["resolved_handles"] == 1

    def test_session_stats_aggregates_over_handles(self):
        registry = DatasetRegistry()
        handle = registry.resolve("toy-university")
        handle.session.evaluate(parse_query("Student"))
        registry.resolve("toy-beers")
        stats = registry.session_stats()
        assert stats["plan_misses"] >= 1
        assert "result_misses" in stats
