"""Tests for the brute-force oracles and the vertex-cover hardness reductions."""

import networkx as nx
import pytest

from repro.core import smallest_witness_optsigma
from repro.datagen import toy_university_instance
from repro.errors import CounterexampleError
from repro.parser import parse_query
from repro.ra import evaluate
from repro.theory import (
    all_minimal_witnesses,
    brute_force_smallest_counterexample,
    brute_force_smallest_witness,
    brute_force_vertex_cover,
    greedy_vertex_cover,
    random_degree_bounded_graph,
    vertex_cover_to_ju_swp,
    vertex_cover_to_pj_swp,
    vertex_cover_to_pjd_scp,
)


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


class TestBruteForce:
    def test_smallest_counterexample_running_example(self, instance, example1_q1, example1_q2):
        result = brute_force_smallest_counterexample(
            example1_q1, example1_q2, instance, max_size=3
        )
        assert len(result) == 3

    def test_no_counterexample_within_bound(self, instance, example1_q1, example1_q2):
        with pytest.raises(CounterexampleError):
            brute_force_smallest_counterexample(example1_q1, example1_q2, instance, max_size=2)

    def test_smallest_witness(self, instance, example1_q2):
        witness = brute_force_smallest_witness(
            example1_q2, instance, ("Mary", "CS"), max_size=3
        )
        assert len(witness) == 2  # {t1, t4} or {t1, t5}

    def test_all_minimal_witnesses_match_paper(self, instance, example1_q2):
        witnesses = all_minimal_witnesses(example1_q2, instance, ("Mary", "CS"))
        assert frozenset({"Student:1", "Registration:1"}) in witnesses
        assert frozenset({"Student:1", "Registration:2"}) in witnesses
        assert frozenset({"Student:1", "Registration:1", "Registration:2"}) not in witnesses


class TestVertexCoverSolvers:
    def test_brute_force_on_triangle(self):
        graph = nx.cycle_graph(3)
        assert len(brute_force_vertex_cover(graph)) == 2

    def test_greedy_is_a_cover(self):
        graph = random_degree_bounded_graph(10, 12, seed=3)
        cover = greedy_vertex_cover(graph)
        assert all(u in cover or v in cover for u, v in graph.edges())

    def test_greedy_within_factor_two(self):
        graph = random_degree_bounded_graph(8, 9, seed=4)
        optimal = brute_force_vertex_cover(graph)
        greedy = greedy_vertex_cover(graph)
        assert len(greedy) <= 2 * max(1, len(optimal))

    def test_random_graph_respects_degree_bound(self):
        graph = random_degree_bounded_graph(12, 15, seed=5)
        assert all(degree <= 3 for _, degree in graph.degree())


def _path_graph():
    graph = nx.Graph()
    graph.add_edges_from([(1, 2), (2, 3), (3, 4)])
    return graph


class TestReductions:
    def test_pj_reduction_instance_structure(self):
        reduction = vertex_cover_to_pj_swp(_path_graph())
        instance = reduction.instance
        assert len(instance.relation("R")) == 4
        assert reduction.q1.output_schema(instance.schema).attribute_names == ("Z",)
        # The target tuple is produced on the full instance by Q1 but not Q2.
        assert reduction.target_row in evaluate(reduction.q1, instance).rows
        assert reduction.target_row not in evaluate(reduction.q2, instance).rows

    def test_pj_reduction_witness_encodes_vertex_cover(self):
        graph = _path_graph()
        reduction = vertex_cover_to_pj_swp(graph)
        optimal_cover = brute_force_vertex_cover(graph)
        witness = brute_force_smallest_witness(
            reduction.q1,
            reduction.instance,
            reduction.target_row,
            max_size=len(optimal_cover) + reduction.witness_offset,
        )
        assert len(witness) == len(optimal_cover) + reduction.witness_offset

    def test_pj_reduction_agrees_with_generic_solver(self):
        graph = _path_graph()
        reduction = vertex_cover_to_pj_swp(graph)
        result = smallest_witness_optsigma(reduction.q1, reduction.q2, reduction.instance)
        optimal_cover = brute_force_vertex_cover(graph)
        assert result.size == len(optimal_cover) + reduction.witness_offset

    def test_ju_reduction_witness_encodes_vertex_cover(self):
        graph = _path_graph()
        reduction = vertex_cover_to_ju_swp(graph)
        optimal_cover = brute_force_vertex_cover(graph)
        result = smallest_witness_optsigma(reduction.q1, reduction.q2, reduction.instance)
        assert result.size == len(optimal_cover) + reduction.witness_offset

    def test_pjd_reduction_structure(self):
        graph = _path_graph()
        reduction = vertex_cover_to_pjd_scp(graph)
        instance = reduction.instance
        assert len(instance.relation("S")) == graph.number_of_edges()
        assert reduction.target_row in evaluate(reduction.q1, instance).rows
        assert reduction.target_row not in evaluate(reduction.q2, instance).rows

    def test_pjd_reduction_witness_size(self):
        graph = _path_graph()
        reduction = vertex_cover_to_pjd_scp(graph)
        optimal_cover = brute_force_vertex_cover(graph)
        result = smallest_witness_optsigma(reduction.q1, reduction.q2, reduction.instance)
        assert result.size == len(optimal_cover) + reduction.witness_offset

    def test_degree_bound_enforced(self):
        star = nx.star_graph(4)  # centre has degree 4
        with pytest.raises(ValueError):
            vertex_cover_to_pj_swp(star)
