"""Tests for relation and database schemas."""

import pytest

from repro.catalog import Attribute, DatabaseSchema, DataType, KeyConstraint, RelationSchema
from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError


@pytest.fixture
def student_schema() -> RelationSchema:
    return RelationSchema.of("Student", [("name", DataType.STRING), ("major", DataType.STRING)])


class TestRelationSchema:
    def test_attribute_lookup(self, student_schema):
        assert student_schema.attribute("major").dtype is DataType.STRING
        assert student_schema.index_of("major") == 1

    def test_unknown_attribute(self, student_schema):
        with pytest.raises(UnknownAttributeError):
            student_schema.attribute("gpa")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("R", [("a", DataType.INT), ("a", DataType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_project(self, student_schema):
        projected = student_schema.project(["major"])
        assert projected.attribute_names == ("major",)

    def test_project_preserves_order(self, student_schema):
        projected = student_schema.project(["major", "name"])
        assert projected.attribute_names == ("major", "name")

    def test_rename_attributes(self, student_schema):
        renamed = student_schema.rename_attributes({"name": "student_name"})
        assert renamed.attribute_names == ("student_name", "major")

    def test_rename_unknown_attribute(self, student_schema):
        with pytest.raises(UnknownAttributeError):
            student_schema.rename_attributes({"gpa": "x"})

    def test_concat_disjoint(self, student_schema):
        other = RelationSchema.of("Course", [("course", DataType.STRING)])
        combined = student_schema.concat(other)
        assert combined.attribute_names == ("name", "major", "course")

    def test_concat_overlapping_rejected(self, student_schema):
        other = RelationSchema.of("Other", [("name", DataType.STRING)])
        with pytest.raises(SchemaError):
            student_schema.concat(other)

    def test_union_compatibility_ignores_names(self, student_schema):
        other = RelationSchema.of("X", [("a", DataType.STRING), ("b", DataType.STRING)])
        assert student_schema.union_compatible(other)

    def test_union_compatibility_arity(self, student_schema):
        other = RelationSchema.of("X", [("a", DataType.STRING)])
        assert not student_schema.union_compatible(other)

    def test_union_compatibility_numeric_widening(self):
        ints = RelationSchema.of("A", [("x", DataType.INT)])
        floats = RelationSchema.of("B", [("y", DataType.FLOAT)])
        assert ints.union_compatible(floats)

    def test_str_rendering(self, student_schema):
        assert "Student" in str(student_schema)
        assert "name:string" in str(student_schema)


class TestDatabaseSchema:
    def test_add_and_lookup(self, student_schema):
        db = DatabaseSchema.of([student_schema])
        assert db.relation("Student") is student_schema
        assert db.has_relation("Student")

    def test_duplicate_relation_rejected(self, student_schema):
        db = DatabaseSchema.of([student_schema])
        with pytest.raises(SchemaError):
            db.add_relation(student_schema)

    def test_unknown_relation(self, student_schema):
        db = DatabaseSchema.of([student_schema])
        with pytest.raises(UnknownRelationError):
            db.relation("Professors")

    def test_constraint_validation(self, student_schema):
        db = DatabaseSchema.of([student_schema])
        with pytest.raises(UnknownAttributeError):
            db.add_constraint(KeyConstraint("Student", ("gpa",)))

    def test_attribute_renamed_copy_is_new(self):
        attr = Attribute("a", DataType.INT)
        renamed = attr.renamed("b")
        assert attr.name == "a" and renamed.name == "b"
        assert renamed.dtype is DataType.INT
