"""Tests for the query workloads: course questions, mutations, beers, TPC-H."""

import pytest

from repro.datagen import (
    beers_instance,
    toy_university_instance,
    tpch_instance,
    university_instance,
    university_schema,
)
from repro.ra import QueryClass, evaluate, profile, results_differ
from repro.workload import (
    RATEST_PROBLEMS,
    beers_problem,
    beers_problems,
    course_questions,
    course_submission_pool,
    drop_conjuncts,
    drop_difference,
    flip_comparison_operators,
    generate_mutants,
    mutate_constants,
    swap_difference_operands,
    tpch_queries,
    tpch_query,
)


class TestCourseQuestions:
    def test_eight_questions(self):
        questions = course_questions()
        assert len(questions) == 8
        assert [q.key for q in questions] == [f"q{i}" for i in range(1, 9)]

    def test_all_queries_schema_valid(self):
        schema = university_schema()
        for question in course_questions():
            question.correct_query.output_schema(schema)
            for wrong in question.handwritten_wrong_queries:
                wrong.output_schema(schema)

    def test_wrong_queries_union_compatible_with_correct(self):
        schema = university_schema()
        for question in course_questions():
            correct_schema = question.correct_query.output_schema(schema)
            for wrong in question.handwritten_wrong_queries:
                assert correct_schema.union_compatible(wrong.output_schema(schema))

    def test_running_example_is_question_two(self):
        instance = toy_university_instance()
        q2 = course_questions()[1]
        assert set(evaluate(q2.correct_query, instance).rows) == {("John", "ECON")}
        assert len(evaluate(q2.handwritten_wrong_queries[0], instance)) == 3

    def test_every_wrong_query_differs_somewhere(self):
        # Each handwritten wrong query must be distinguishable on some
        # reasonably sized instance (otherwise it would not be "wrong").
        instance = university_instance(300, seed=17)
        for question in course_questions():
            for index, wrong in enumerate(question.handwritten_wrong_queries):
                assert results_differ(question.correct_query, wrong, instance), (
                    f"{question.key} wrong #{index} is indistinguishable"
                )

    def test_difficulty_range(self):
        difficulties = [q.difficulty for q in course_questions()]
        assert min(difficulties) == 1 and max(difficulties) == 5


class TestSubmissionPool:
    def test_pool_contains_handwritten_and_mutants(self):
        pool = course_submission_pool(seed=1, mutants_per_question=10)
        assert pool.total_wrong() > sum(
            len(q.handwritten_wrong_queries) for q in course_questions()
        )
        assert set(pool.wrong_queries) == {q.key for q in course_questions()}

    def test_pool_is_deterministic(self):
        a = course_submission_pool(seed=5, mutants_per_question=8)
        b = course_submission_pool(seed=5, mutants_per_question=8)
        assert {k: [str(q) for q in v] for k, v in a.wrong_queries.items()} == {
            k: [str(q) for q in v] for k, v in b.wrong_queries.items()
        }

    def test_pool_queries_are_schema_valid(self):
        schema = university_schema()
        pool = course_submission_pool(seed=2, mutants_per_question=6)
        for queries in pool.wrong_queries.values():
            for query in queries:
                query.output_schema(schema)


class TestMutations:
    def _q1(self):
        return course_questions()[0].correct_query

    def test_constant_mutation(self):
        mutants = mutate_constants(self._q1(), ["ECON"])
        assert mutants
        assert all("ECON" in str(m.query) for m in mutants)

    def test_flip_comparison(self):
        mutants = flip_comparison_operators(self._q1())
        assert mutants
        assert any("!=" in str(m.query) for m in mutants)

    def test_drop_conjuncts_reduces_predicate(self):
        mutants = drop_conjuncts(self._q1())
        assert mutants
        original_length = len(str(self._q1()))
        assert all(len(str(m.query)) < original_length for m in mutants)

    def test_difference_mutations(self):
        q2 = course_questions()[1].correct_query
        assert swap_difference_operands(q2)
        dropped = drop_difference(q2)
        assert dropped
        assert all("−" not in str(m.query) for m in dropped)

    def test_generate_mutants_unique_and_capped(self):
        mutants = generate_mutants(self._q1(), constant_pool=["ECON", "MATH"], max_mutants=5, seed=1)
        assert len(mutants) <= 5
        assert len({str(m.query) for m in mutants}) == len(mutants)

    def test_mutants_differ_from_original(self):
        q2 = course_questions()[1].correct_query
        for mutant in generate_mutants(q2, constant_pool=["ECON"]):
            assert str(mutant.query) != str(q2)
            assert mutant.description


class TestBeersProblems:
    def test_ten_problems(self):
        assert len(beers_problems()) == 10
        assert [p.key for p in beers_problems()] == list("abcdefghij")

    def test_ratest_availability_matches_paper(self):
        available = {p.key for p in beers_problems() if p.ratest_available}
        assert available == set(RATEST_PROBLEMS) == {"b", "d", "e", "g", "i"}

    def test_queries_evaluate_on_generated_instance(self):
        instance = beers_instance(num_drinkers=20, num_bars=8, num_beers=6, seed=7)
        for problem in beers_problems():
            evaluate(problem.correct_query, instance)

    def test_problem_i_is_no_aggregation_division(self):
        problem = beers_problem("i")
        assert profile(problem.correct_query).query_class in (
            QueryClass.SPJUD,
            QueryClass.SPJUD_STAR,
        )
        assert not profile(problem.correct_query).uses_aggregate

    def test_problem_h_and_i_differ(self):
        # (h) and (i) are similar but not equivalent ("some beers" vs "only
        # beers"): a bar with an empty menu is bad for (h) but harmless for (i).
        instance = beers_instance(num_drinkers=25, num_bars=8, num_beers=6, seed=3)
        h_rows = evaluate(beers_problem("h").correct_query, instance).rows
        i_rows = evaluate(beers_problem("i").correct_query, instance).rows
        assert i_rows != h_rows
        assert h_rows and i_rows

    def test_unknown_problem_key(self):
        with pytest.raises(KeyError):
            beers_problem("z")

    def test_wrong_variants_differ_on_generated_instance(self):
        instance = beers_instance(num_drinkers=30, num_bars=10, num_beers=7, seed=11)
        for key in ("b", "g", "i"):
            problem = beers_problem(key)
            for wrong in problem.handwritten_wrong_queries:
                assert results_differ(problem.correct_query, wrong, instance)


class TestTpchQueries:
    def test_five_queries_with_two_wrong_variants(self):
        queries = tpch_queries()
        assert [q.key for q in queries] == ["Q4", "Q16", "Q18", "Q21", "Q21-S"]
        assert all(len(q.wrong_texts) == 2 for q in queries)

    def test_queries_are_aggregate_class(self):
        for query in tpch_queries():
            assert profile(query.correct_query).uses_aggregate

    def test_aggregate_predicate_flags(self):
        assert tpch_query("Q18").has_aggregate_predicate
        assert tpch_query("Q21-S").has_aggregate_predicate
        assert not tpch_query("Q4").has_aggregate_predicate

    def test_queries_evaluate_on_tpch_lite(self):
        instance = tpch_instance(scale=0.05, seed=1)
        for query in tpch_queries():
            result = evaluate(query.correct_query, instance)
            assert result.schema.arity >= 2

    def test_wrong_variants_schema_compatible(self):
        instance = tpch_instance(scale=0.05, seed=1)
        for query in tpch_queries():
            correct_schema = query.correct_query.output_schema(instance.schema)
            for wrong in query.wrong_queries:
                assert correct_schema.union_compatible(wrong.output_schema(instance.schema))

    def test_unknown_query_key(self):
        with pytest.raises(KeyError):
            tpch_query("Q99")
