"""Tests for selection pushdown and query parameterization."""

import pytest

from repro.datagen import toy_university_instance, university_schema
from repro.parser import parse_query
from repro.ra import (
    Difference,
    Selection,
    RelationRef,
    evaluate,
    ge,
    lit,
    relation,
    select,
    group_by,
    count,
    equals_constant,
)
from repro.ra.rewrite import (
    add_tuple_selection,
    parameterize_query,
    push_selections_down,
)

DB = university_schema()


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


def assert_equivalent_on(expr_a, expr_b, instance, params=None):
    assert evaluate(expr_a, instance, params).same_rows(evaluate(expr_b, instance, params))


class TestAddTupleSelection:
    def test_selects_exactly_one_row(self, instance, example1_q2):
        selected = add_tuple_selection(example1_q2, DB, ("Mary", "CS"))
        assert set(evaluate(selected, instance).rows) == {("Mary", "CS")}

    def test_skips_null_attributes(self):
        selected = add_tuple_selection(relation("Student"), DB, (None, "CS"))
        assert "major" in str(selected.predicate)
        assert "name" not in selected.predicate.referenced_columns()


class TestPushdown:
    def test_pushdown_preserves_semantics_on_running_example(
        self, instance, example1_q1, example1_q2
    ):
        diff = Difference(example1_q2, example1_q1)
        selected = add_tuple_selection(diff, DB, ("Mary", "CS"))
        pushed = push_selections_down(selected, DB)
        assert_equivalent_on(selected, pushed, instance)

    def test_pushdown_moves_selection_off_the_top(self, example1_q1, example1_q2):
        diff = Difference(example1_q2, example1_q1)
        selected = add_tuple_selection(diff, DB, ("Mary", "CS"))
        pushed = push_selections_down(selected, DB)
        # The root is no longer the freshly added selection.
        assert not isinstance(pushed, Selection)

    def test_pushdown_through_projection_renames_columns(self, instance):
        query = parse_query(
            "\\select_{name = 'Mary'} \\project_{s.name -> name} \\rename_{prefix: s} Student"
        )
        pushed = push_selections_down(query, DB)
        assert_equivalent_on(query, pushed, instance)
        assert "s.name" in str(pushed)

    def test_pushdown_through_union_and_difference(self, instance):
        query = parse_query(
            "\\select_{name = 'Mary'} ("
            "(\\project_{name} Student) \\diff (\\project_{name} Registration)"
            ")"
        )
        pushed = push_selections_down(query, DB)
        assert_equivalent_on(query, pushed, instance)

    def test_pushdown_propagates_constants_across_equijoin(self, instance):
        query = parse_query(
            "\\select_{s.name = 'Jesse'} ("
            "  \\rename_{prefix: s} Student"
            "  \\join_{s.name = r.name}"
            "  \\rename_{prefix: r} Registration"
            ")"
        )
        pushed = push_selections_down(query, DB)
        assert_equivalent_on(query, pushed, instance)
        # The constant must have reached the Registration side as well (it may be
        # pushed all the way below the rename, as name = 'Jesse').
        assert str(pushed).count("'Jesse'") >= 2

    def test_pushdown_into_group_by_keys_only(self, instance):
        query = select(
            group_by(relation("Registration"), ["name"], [count(None, "n")]),
            equals_constant("name", "Mary") & ge("n", lit(2)),
        )
        pushed = push_selections_down(query, DB)
        assert_equivalent_on(query, pushed, instance)
        # The aggregate comparison must stay above the GroupBy.
        assert isinstance(pushed, Selection)
        assert pushed.predicate.referenced_columns() == {"n"}

    def test_pushdown_on_selection_free_query_is_identity(self, instance, example1_q2):
        pushed = push_selections_down(example1_q2, DB)
        assert_equivalent_on(example1_q2, pushed, instance)


class TestParameterization:
    def test_having_constant_becomes_parameter(self, instance):
        query = parse_query(
            "\\select_{n >= 3} \\aggr_{group: name; count(*) -> n} "
            "\\select_{dept = 'CS'} Registration"
        )
        parameterized = parameterize_query(query, DB)
        assert parameterized.original_values == {"p0": 3}
        assert_equivalent_on(query, parameterized.query, instance, params={"p0": 3})
        # A different parameter setting changes the result.
        relaxed = evaluate(parameterized.query, instance, {"p0": 1})
        strict = evaluate(query, instance)
        assert len(relaxed) > len(strict)

    def test_shared_names_across_two_queries(self):
        q1 = parse_query("\\select_{n >= 3} \\aggr_{group: name; count(*) -> n} Registration")
        q2 = parse_query(
            "\\select_{n >= 3} \\aggr_{group: name; count(*) -> n} "
            "\\select_{dept = 'CS'} Registration"
        )
        shared: dict = {}
        p1 = parameterize_query(q1, DB, shared_names=shared)
        p2 = parameterize_query(q2, DB, shared_names=shared)
        assert p1.original_values == p2.original_values == {"p0": 3}

    def test_non_aggregate_selections_untouched(self):
        query = parse_query("\\select_{dept = 'CS'} Registration")
        parameterized = parameterize_query(query, DB)
        assert parameterized.original_values == {}
        assert str(parameterized.query) == str(query)
