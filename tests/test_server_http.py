"""End-to-end tests of the grading daemon over real HTTP.

One module-scoped daemon (1 worker, in-memory store) serves most tests;
scenarios that need their own store/queue configuration boot private
servers.  Every request travels the full stack: client → HTTP frontend →
store → worker process → engine.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import GradingService
from repro.api.serialization import SCHEMA_VERSION
from repro.server import GradingClient, GradingServer, ServerConfig, ServerError

REFERENCE = "\\project_{name} \\select_{dept = 'ECON'} Registration"
WRONG = "\\project_{name} Registration"


@pytest.fixture(scope="module")
def server():
    instance = GradingServer(ServerConfig(workers=1)).start()
    yield instance
    instance.shutdown()


@pytest.fixture(scope="module")
def client(server):
    with GradingClient(f"http://127.0.0.1:{server.port}") as c:
        c.wait_until_healthy()
        yield c


def request_payload(test_query: str = WRONG, **extra) -> dict:
    return {"id": "alice/q1", "correct": REFERENCE, "test": test_query, **extra}


class TestOperationalEndpoints:
    def test_healthz_reports_version_and_store(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["workers"] == 1
        assert "rows" in health["store"]

    def test_datasets_lists_builtin_registry(self, client):
        payload = client.datasets()
        assert "toy-university" in payload["datasets"]
        assert payload["default_dataset"] == "toy-university"

    def test_metrics_exposition_format(self, client):
        client.grade(request_payload())  # ensure at least one grade happened
        text = client.metrics_text()
        assert "# TYPE repro_server_requests_total counter" in text
        assert "# TYPE repro_server_stage_seconds histogram" in text
        assert 'repro_server_grades_total{store="' in text
        assert "repro_server_queue_depth" in text
        assert 'version="' + repro.__version__ + '"' in text
        # Worker engine-cache counters are scraped over the task queues.
        assert 'repro_worker_cache{counter="sessions_plan_hits",worker="0"}' in text
        # A fresh wrong submission (store misses skip no stage) graded with
        # explain=True populates the counterexample pipeline's own breakdown.
        client.grade(request_payload("\\project_{name} \\select_{grade > 80} Registration"))
        text = client.metrics_text()
        assert "# TYPE repro_server_explain_stage_seconds histogram" in text
        assert 'repro_server_explain_stage_seconds_bucket{stage="solver"' in text
        assert 'repro_server_explain_stage_seconds_bucket{stage="provenance"' in text
        assert 'repro_server_explain_stage_seconds_count{stage="total"}' in text

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404


class TestGrading:
    def test_correct_submission(self, client):
        envelope = client.grade(request_payload(REFERENCE))
        assert envelope["correct"] is True
        assert envelope["outcome"]["error"] is None

    def test_wrong_submission_gets_counterexample(self, client):
        envelope = client.grade(request_payload())
        assert envelope["correct"] is False
        assert envelope["outcome"]["report"]["result"]["counterexample"]

    def test_http_grade_bit_identical_to_in_process(self, client):
        payload = request_payload()
        envelope = client.grade(payload)
        local = GradingService().submit(payload).to_dict(include_timings=False)
        served = {k: v for k, v in envelope.items() if k not in ("store", "wall_time")}
        assert served == local

    def test_parse_error_is_a_grade_not_a_failure(self, client):
        envelope = client.grade(request_payload("\\select_{oops"))
        assert envelope["correct"] is False
        assert envelope["outcome"]["error_kind"] == "parse_error"

    def test_store_hit_serves_identical_outcome_with_callers_id(self, client):
        first = client.grade(request_payload(id="student-1"))
        second = client.grade(request_payload(id="student-2"))
        assert second["store"] in ("hit", "coalesced")
        assert second["id"] == "student-2"
        assert second["outcome"] == first["outcome"]

    def test_unknown_dataset_is_an_invalid_request_grade(self, client):
        envelope = client.grade(request_payload(dataset="not-a-dataset"))
        assert envelope["correct"] is False
        assert envelope["outcome"]["error_kind"] == "invalid_request"


class TestBatch:
    def test_batch_preserves_order_and_dedupes(self, client):
        requests = [
            request_payload(id="a"),
            request_payload(REFERENCE, id="b"),
            request_payload(id="c"),  # duplicate of "a" → store/coalesced
        ]
        results = client.grade_batch(requests)
        assert [r["id"] for r in results] == ["a", "b", "c"]
        assert [r["correct"] for r in results] == [False, True, False]
        assert results[2]["store"] in ("hit", "coalesced")
        assert results[2]["outcome"] == results[0]["outcome"]

    def test_batch_reports_per_item_invalid_requests(self, client):
        results = client.grade_batch([request_payload(id="ok"), {"id": "broken"}])
        assert results[0]["correct"] in (True, False)
        assert results[1]["outcome"]["error_kind"] == "invalid_request"

    def test_batch_body_must_be_an_object(self, client):
        with pytest.raises(ServerError) as err:
            client._request("POST", "/v1/grade_batch", {"nope": []})
        assert err.value.status == 400


class TestValidation:
    def test_not_json_is_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("POST", "/v1/grade", body=b"junk{", headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error_kind"] == "invalid_request"

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # missing queries
            {"correct": REFERENCE},  # missing test
            {"correct": REFERENCE, "test": WRONG, "seed": "zero"},  # bad type
            {"correct": REFERENCE, "test": WRONG, "params": [1, 2]},  # bad type
            [1, 2, 3],  # not an object
        ],
    )
    def test_malformed_request_is_400(self, client, payload):
        with pytest.raises(ServerError) as err:
            client._request("POST", "/v1/grade", payload)
        assert err.value.status == 400
        assert err.value.payload["error_kind"] == "invalid_request"


class TestBackpressureAndDrain:
    def test_zero_queue_answers_429(self):
        server = GradingServer(ServerConfig(workers=1, max_queue=0)).start()
        try:
            with GradingClient(f"http://127.0.0.1:{server.port}", retries=1) as client:
                client.wait_until_healthy()
                with pytest.raises(ServerError) as err:
                    client.grade(request_payload())
                assert err.value.status == 429
                assert err.value.payload["error_kind"] == "overloaded"
        finally:
            server.shutdown()

    def test_shutdown_drains_and_refuses_new_work(self):
        server = GradingServer(ServerConfig(workers=1)).start()
        with GradingClient(f"http://127.0.0.1:{server.port}") as client:
            client.wait_until_healthy()
            assert client.grade(request_payload())["correct"] is False
        server.shutdown()
        server.shutdown()  # idempotent
        with GradingClient(f"http://127.0.0.1:{server.port}", retries=0) as client:
            with pytest.raises(ServerError):
                client.health()


class TestPersistence:
    def test_grades_survive_restart(self, tmp_path):
        store = tmp_path / "grades.sqlite3"
        first = GradingServer(ServerConfig(workers=1, store_path=store)).start()
        with GradingClient(f"http://127.0.0.1:{first.port}") as client:
            client.wait_until_healthy()
            cold = client.grade(request_payload())
            assert cold["store"] == "miss"
        first.shutdown()

        second = GradingServer(ServerConfig(workers=1, store_path=store)).start()
        try:
            with GradingClient(f"http://127.0.0.1:{second.port}") as client:
                client.wait_until_healthy()
                warm = client.grade(request_payload(id="someone-else"))
                assert warm["store"] == "hit"
                assert warm["id"] == "someone-else"
                assert warm["outcome"] == cold["outcome"]
        finally:
            second.shutdown()

    def test_two_servers_share_one_store(self, tmp_path):
        """Two daemons (four worker processes total) race on one store."""
        store = tmp_path / "grades.sqlite3"
        servers = [
            GradingServer(ServerConfig(workers=1, store_path=store)).start()
            for _ in range(2)
        ]
        try:
            clients = [GradingClient(f"http://127.0.0.1:{s.port}") for s in servers]
            for client in clients:
                client.wait_until_healthy()
            with ThreadPoolExecutor(max_workers=2) as pool:
                envelopes = list(
                    pool.map(lambda c: c.grade(request_payload()), clients)
                )
            assert envelopes[0]["outcome"] == envelopes[1]["outcome"]
            total_rows = servers[0].store.info()["rows"]
            assert total_rows == 1
            for client in clients:
                client.close()
        finally:
            for server in servers:
                server.shutdown()


class TestReviewRegressions:
    def test_batch_items_are_always_full_envelopes_under_overload(self):
        """Frontend-level failures inside a batch must still be grade envelopes."""
        server = GradingServer(
            ServerConfig(workers=1, max_queue=0, request_timeout=0.5)
        ).start()
        try:
            with GradingClient(f"http://127.0.0.1:{server.port}") as client:
                client.wait_until_healthy()
                results = client.grade_batch([request_payload(id="x")])
            assert results[0]["correct"] is False
            assert results[0]["id"] == "x"
            assert results[0]["outcome"]["error_kind"] in ("overloaded", "unavailable")
        finally:
            server.shutdown()

    def test_warm_default_dataset_spreads_over_workers(self):
        """A single-dataset class must use every worker, not one CRC32 slot."""
        from concurrent.futures import Future

        from repro.server.workers import WorkerConfig, WorkerPool

        pool = WorkerPool(WorkerConfig(), workers=2, max_queue=8)
        try:
            with pool._lock:
                first = pool._choose_worker("toy-university", 0)
                pool._pending[999] = (Future(), first)
                second = pool._choose_worker("toy-university", 0)
                del pool._pending[999]
            assert {first, second} == {0, 1}
            # Specs not warmed everywhere keep strict cache-locality pinning.
            with pool._lock:
                assert pool._choose_worker("university:77", 3) == pool.route(
                    "university:77", 3
                )
        finally:
            pool.close()

    def test_metrics_scrape_does_not_consume_grading_slots(self):
        """Stats probes ride the queues but must not trigger 429s."""
        server = GradingServer(ServerConfig(workers=1, max_queue=1)).start()
        try:
            with GradingClient(f"http://127.0.0.1:{server.port}", retries=2) as client:
                client.wait_until_healthy()
                assert server.pool.stats(timeout=5.0)  # probe in flight history
                envelope = client.grade(request_payload(id="after-scrape"))
                assert envelope["correct"] is False
        finally:
            server.shutdown()

    def test_pool_does_not_leak_pythonpath_into_parent_env(self):
        import os

        from repro.server.workers import WorkerConfig, WorkerPool

        before = os.environ.get("PYTHONPATH")
        pool = WorkerPool(WorkerConfig(), workers=1, max_queue=2)
        try:
            assert os.environ.get("PYTHONPATH") == before
        finally:
            pool.close()
