"""Differential fuzzing: reference interpreter vs. plan engine vs. SQLite.

Hundreds of seeded random queries (see :mod:`repro.workload.fuzz`) run on
perturbed instances through three independent evaluators:

* the pre-engine reference interpreter (``repro.engine.reference``),
* the plan-based engine on the Python backend,
* the plan-based engine on the SQLite backend,

and additionally round-trip through the DSL parser (``to_dsl`` → ``parse``).
All four row sets must be identical.  On failure the assertion message is a
reproduction one-liner: the seed, the query's DSL text, and any parameter
binding — paste it into ``QueryFuzzer.query(seed)`` or the CLI to replay.

``REPRO_FUZZ_BUDGET`` scales the per-instance query budget (default 300;
CI's smoke job uses a small value).  The ``slow``-marked extended run only
executes when ``REPRO_FUZZ_EXTENDED`` is set.
"""

from __future__ import annotations

import os

import pytest

from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import Attribute, DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.datagen import toy_beers_instance, toy_university_instance
from repro.datagen.tpch import tpch_instance
from repro.engine.optimizer import LEGACY_OPTIMIZER_CONFIG
from repro.engine.reference import ReferenceEvaluator
from repro.engine.session import EngineSession
from repro.parser import parse_query
from repro.workload.fuzz import QueryFuzzer, perturb_instance

pytestmark = pytest.mark.fuzz


def _budget(default: int = 300) -> int:
    return int(os.environ.get("REPRO_FUZZ_BUDGET", default))


def _nullable_instance() -> DatabaseInstance:
    """A small schema with nullable columns: NULL semantics get exercised."""
    schema = DatabaseSchema.of(
        [
            RelationSchema.of(
                "Sensor",
                [
                    Attribute("sid", DataType.INT),
                    Attribute("room", DataType.STRING),
                    Attribute("reading", DataType.FLOAT, nullable=True),
                ],
            ),
            RelationSchema.of(
                "Room",
                [
                    Attribute("room", DataType.STRING),
                    Attribute("floor", DataType.INT),
                    Attribute("label", DataType.STRING, nullable=True),
                ],
            ),
        ]
    )
    instance = DatabaseInstance(schema)
    instance.relation("Sensor").insert_all(
        [
            (1, "r1", 20.5),
            (2, "r1", None),
            (3, "r2", 18.25),
            (4, "r3", None),
            (5, "r2", 20.5),
        ]
    )
    instance.relation("Room").insert_all(
        [("r1", 1, "lab"), ("r2", 1, None), ("r3", 2, "office"), ("r4", 2, None)]
    )
    return instance


def _instances() -> list[tuple[str, DatabaseInstance]]:
    return [
        ("university", perturb_instance(toy_university_instance(), seed=42)),
        ("beers", perturb_instance(toy_beers_instance(), seed=43)),
        ("nullable", perturb_instance(_nullable_instance(), seed=44)),
    ]


def _run_differential(instance: DatabaseInstance, budget: int, *, start: int = 0) -> dict:
    fuzzer = QueryFuzzer(instance.schema, instance=instance)
    python_session = EngineSession(instance)
    sqlite_session = EngineSession(instance, backend="sqlite")
    for fuzz_query in fuzzer.queries(budget, start=start):
        reference = frozenset(
            ReferenceEvaluator(instance, fuzz_query.params).rows(fuzz_query.expression)
        )
        engine = python_session.evaluate(fuzz_query.expression, fuzz_query.params).rows
        sqlite = sqlite_session.evaluate(fuzz_query.expression, fuzz_query.params).rows
        reparsed = python_session.evaluate(
            parse_query(fuzz_query.dsl), fuzz_query.params
        ).rows
        assert reference == engine == sqlite == reparsed, (
            f"backends disagree — reproduce with: {fuzz_query.repro()}\n"
            f"  reference: {len(reference)} rows\n"
            f"  engine:    {len(engine)} rows\n"
            f"  sqlite:    {len(sqlite)} rows\n"
            f"  reparsed:  {len(reparsed)} rows"
        )
    return sqlite_session.stats


@pytest.mark.parametrize("label,instance", _instances(), ids=lambda v: v if isinstance(v, str) else "")
def test_differential_fuzz(label, instance):
    """Seeded random queries agree bit for bit across all evaluators."""
    stats = _run_differential(instance, _budget())
    # The suite must actually exercise SQLite, not silently fall back.
    assert stats["sqlite_statements"] > 0
    assert stats["sqlite_fallbacks"] == 0


def _join_heavy_instances() -> list[tuple[str, DatabaseInstance]]:
    # Beers and TPC-H carry FK graphs deep enough for multi-hop chains;
    # perturbation leaves dangling references behind on purpose, so the
    # optimized plans must agree on dirty data too.
    return [
        ("beers", perturb_instance(toy_beers_instance(), seed=45)),
        ("tpch", perturb_instance(tpch_instance(scale=0.02), seed=46)),
    ]


@pytest.mark.parametrize(
    "label,instance", _join_heavy_instances(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_differential_fuzz_join_heavy(label, instance):
    """Reordered + columnar plans stay bit-identical on deep FK join trees.

    The join-heavy generator feeds the exact shapes the cost-based pipeline
    rewrites (commutative equi-join regions, FK joins eligible for semijoin
    reduction) through four evaluators: the fully optimized Python engine,
    the engine with stage-2 passes disabled (``LEGACY_OPTIMIZER_CONFIG``),
    SQLite, and the reference interpreter — plus a DSL re-parse.
    """
    budget = _budget()
    fuzzer = QueryFuzzer(
        instance.schema, instance=instance, max_depth=5, join_heavy=True
    )
    optimized = EngineSession(instance)
    legacy = EngineSession(instance, config=LEGACY_OPTIMIZER_CONFIG)
    sqlite = EngineSession(instance, backend="sqlite")
    for fuzz_query in fuzzer.queries(budget):
        reference = frozenset(
            ReferenceEvaluator(instance, fuzz_query.params).rows(fuzz_query.expression)
        )
        fast = optimized.evaluate(fuzz_query.expression, fuzz_query.params).rows
        slow = legacy.evaluate(fuzz_query.expression, fuzz_query.params).rows
        via_sqlite = sqlite.evaluate(fuzz_query.expression, fuzz_query.params).rows
        reparsed = optimized.evaluate(
            parse_query(fuzz_query.dsl), fuzz_query.params
        ).rows
        assert reference == fast == slow == via_sqlite == reparsed, (
            f"optimized plans diverge — reproduce with: {fuzz_query.repro()}\n"
            f"  reference: {len(reference)} rows\n"
            f"  optimized: {len(fast)} rows\n"
            f"  legacy:    {len(slow)} rows\n"
            f"  sqlite:    {len(via_sqlite)} rows\n"
            f"  reparsed:  {len(reparsed)} rows"
        )


def test_join_heavy_mode_reaches_deep_fk_joins():
    """Join-heavy generation actually produces multi-join FK trees."""
    from repro.ra.ast import Join

    instance = perturb_instance(toy_beers_instance(), seed=45)
    fuzzer = QueryFuzzer(
        instance.schema, instance=instance, max_depth=5, join_heavy=True
    )
    max_joins = 0
    for fuzz_query in fuzzer.queries(100):
        joins = sum(
            1 for node in fuzz_query.expression.walk() if isinstance(node, Join)
        )
        max_joins = max(max_joins, joins)
    assert max_joins >= 3


def test_fuzzer_is_deterministic():
    instance = perturb_instance(toy_university_instance(), seed=42)
    first = QueryFuzzer(instance.schema, instance=instance)
    second = QueryFuzzer(instance.schema, instance=instance)
    for seed in range(40):
        a, b = first.query(seed), second.query(seed)
        assert a.dsl == b.dsl
        assert a.params == b.params


def test_fuzzer_covers_every_operator():
    """The generator reaches all SPJUDA operators within a modest budget."""
    from repro.ra.ast import (
        Difference,
        GroupBy,
        Intersection,
        Join,
        NaturalJoin,
        Projection,
        Rename,
        Selection,
        Union,
    )

    instance = perturb_instance(toy_university_instance(), seed=42)
    fuzzer = QueryFuzzer(instance.schema, instance=instance)
    seen: set[type] = set()
    for fuzz_query in fuzzer.queries(300):
        seen.update(type(node) for node in fuzz_query.expression.walk())
    expected = {
        Selection,
        Projection,
        Rename,
        Join,
        NaturalJoin,
        Union,
        Difference,
        Intersection,
        GroupBy,
    }
    assert expected <= seen


def test_perturbation_changes_data_and_respects_schema():
    base = toy_university_instance()
    mutated = perturb_instance(base, seed=1)
    assert mutated.schema is base.schema
    assert {name: mutated.relation(name).value_set() for name in mutated.relation_names} != {
        name: base.relation(name).value_set() for name in base.relation_names
    }
    other = perturb_instance(base, seed=1)
    for name in base.relation_names:
        assert mutated.relation(name).value_set() == other.relation(name).value_set()


@pytest.mark.slow
@pytest.mark.skipif(
    "REPRO_FUZZ_EXTENDED" not in os.environ,
    reason="extended fuzz run only with REPRO_FUZZ_EXTENDED set",
)
@pytest.mark.parametrize("label,instance", _instances(), ids=lambda v: v if isinstance(v, str) else "")
def test_differential_fuzz_extended(label, instance):
    """A deeper sweep (fresh seed range) for nightly/extended runs."""
    budget = max(1000, 2 * _budget())
    _run_differential(instance, budget, start=10_000)
