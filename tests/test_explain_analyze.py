"""Tests for EXPLAIN ANALYZE: per-operator instrumentation vs estimates.

The analyzer shadows the executor's memo protocol, so the headline property
is *zero interference*: an analyzed execution returns exactly the rows a
plain execution returns, while recording actual cardinalities, wall time and
cache attribution per operator — which are then compared against the
cost-based optimizer's :class:`CardinalityEstimator` predictions (q-error).
"""

from __future__ import annotations

import json

import pytest

from repro.datagen import toy_university_instance
from repro.engine.session import EngineSession
from repro.obs.analyze import ExplainAnalysis, q_error
from repro.obs.trace import Tracer, operator_trace
from repro.parser.ra_parser import parse_query

REFERENCE = "\\project_{name} \\select_{dept = 'ECON'} Registration"
JOINED = (
    "\\project_{s.name} (\\rename_{prefix: s} Student "
    "\\join_{s.name = r.name and r.dept = 'ECON'} \\rename_{prefix: r} Registration)"
)


@pytest.fixture()
def session():
    return EngineSession(toy_university_instance())


class TestQError:
    def test_perfect_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric_over_and_under_estimates(self):
        assert q_error(5, 20) == 4.0
        assert q_error(20, 5) == 4.0

    def test_zero_rows_clamp_instead_of_dividing_by_zero(self):
        assert q_error(0, 5) == 5.0
        assert q_error(5, 0) == 5.0
        assert q_error(0, 0) == 1.0

    def test_missing_estimate_is_none(self):
        assert q_error(None, 5) is None


class TestExplainAnalyze:
    def test_tree_carries_actuals_estimates_and_qerror(self, session):
        analysis = session.explain_analyze(parse_query(JOINED))
        assert isinstance(analysis, ExplainAnalysis)
        flat = list(self._walk(analysis.roots))
        ops = {record.op for record in flat}
        assert "Scan" in ops and "Project" in ops
        for record in flat:
            assert record.actual_rows is not None
            assert record.seconds >= 0.0
        assert any(record.est_rows is not None for record in flat)
        assert analysis.max_q_error() is None or analysis.max_q_error() >= 1.0

    def test_output_rows_match_a_plain_evaluation(self, session):
        expression = parse_query(JOINED)
        analysis = session.explain_analyze(expression)
        plain = session.evaluate(expression)
        assert analysis.output_rows == len(plain.rows)

    def test_analyzed_execution_matches_unanalyzed_rows(self):
        expression = parse_query(JOINED)
        plain = EngineSession(toy_university_instance()).evaluate(expression)
        analyzed_session = EngineSession(toy_university_instance())
        tracer = Tracer("test")
        with tracer.span("grade"), operator_trace(True):
            traced = analyzed_session.evaluate(expression)
        assert traced.same_rows(plain)

    def test_second_run_attributes_the_memo_hit(self, session):
        expression = parse_query(REFERENCE)
        cold = session.explain_analyze(expression)
        warm = session.explain_analyze(expression)
        assert not cold.roots[0].cached
        assert warm.roots[0].cached
        assert warm.output_rows == cold.output_rows

    def test_render_and_to_dict_forms(self, session):
        analysis = session.explain_analyze(parse_query(JOINED))
        text = analysis.render()
        assert "actual=" in text and "est=" in text and "q-err=" in text
        payload = analysis.to_dict()
        json.dumps(payload)  # must be wire-serializable
        assert payload["output_rows"] == analysis.output_rows
        assert payload["operators"]

    def _walk(self, records):
        for record in records:
            yield record
            yield from self._walk(record.children)


class TestOperatorSpans:
    def test_traced_evaluation_emits_operator_spans(self):
        session = EngineSession(toy_university_instance())
        tracer = Tracer("test")
        with tracer.capture() as spans:
            with tracer.span("grade") as root, operator_trace(True):
                session.evaluate(parse_query(JOINED))
        op_spans = [s for s in spans if s["name"].startswith("op.")]
        assert op_spans, [s["name"] for s in spans]
        for span in op_spans:
            assert span["trace_id"] == root.trace_id
            assert "rows" in span["attributes"]
        # The operator spans form a tree hanging off the grade span.
        ids = {s["span_id"] for s in op_spans} | {root.span_id}
        assert all(s["parent_id"] in ids for s in op_spans)

    def test_untraced_evaluation_emits_nothing(self):
        session = EngineSession(toy_university_instance())
        tracer = Tracer("test")
        with tracer.capture() as spans:
            with tracer.span("grade"):
                session.evaluate(parse_query(JOINED))  # no operator_trace()
        assert [s["name"] for s in spans] == ["grade"]
