"""Tests for the experiment harness, result objects and shared core helpers."""

import time

import pytest

from repro.core.common import Stopwatch, pick_witness_target, symmetric_difference_rows
from repro.core.results import CounterexampleResult, WitnessResult
from repro.datagen import toy_university_instance
from repro.errors import CounterexampleError
from repro.experiments.harness import ExperimentResult, ScaleProfile, mean, run_experiment
from repro.ra import evaluate


class TestStopwatch:
    def test_phases_accumulate(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("a"):
            time.sleep(0.01)
        with stopwatch.measure("a"):
            pass
        with stopwatch.measure("b"):
            pass
        timings = stopwatch.finish()
        assert timings["a"] >= 0.01
        assert "b" in timings
        assert timings["total"] >= timings["a"]


class TestCommonHelpers:
    def test_symmetric_difference_rows(self, example1_q1, example1_q2):
        instance = toy_university_instance()
        only1, only2 = symmetric_difference_rows(example1_q1, example1_q2, instance)
        assert only1 == []
        assert set(only2) == {("Mary", "CS"), ("Jesse", "CS")}

    def test_pick_witness_target_orientation(self, example1_q1, example1_q2):
        instance = toy_university_instance()
        row, winning, losing = pick_witness_target(example1_q1, example1_q2, instance)
        assert winning is example1_q2 and losing is example1_q1
        assert row in evaluate(example1_q2, instance).rows

    def test_pick_witness_target_identical_queries(self, example1_q1):
        instance = toy_university_instance()
        with pytest.raises(CounterexampleError):
            pick_witness_target(example1_q1, example1_q1, instance)


class TestResultObjects:
    def test_witness_result_size(self):
        result = WitnessResult(tids=frozenset({"a", "b"}), row=(1,), optimal=True)
        assert result.size == 2

    def test_counterexample_total_time_fallback(self):
        instance = toy_university_instance()
        sub = instance.subinstance({"Student:1"})
        rows = evaluate_student = evaluate
        result = CounterexampleResult(
            tids=frozenset({"Student:1"}),
            counterexample=sub,
            distinguishing_row=None,
            q1_rows=rows(_student_query(), sub),
            q2_rows=evaluate_student(_student_query(), sub),
            optimal=True,
            algorithm="test",
            timings={"solver": 0.25, "raw_eval": 0.25},
        )
        assert result.total_time() == pytest.approx(0.5)
        assert result.size == 1


def _student_query():
    from repro.ra import project, relation

    return project(relation("Student"), ["name"])


class TestExperimentHarness:
    def test_run_experiment_and_markdown(self):
        result = run_experiment(
            "Demo", "A demo experiment.", lambda: [{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}]
        )
        markdown = result.to_markdown()
        assert "### Demo" in markdown
        assert "| a | b | c |" in markdown
        assert result.elapsed_seconds >= 0
        assert result.column("a") == [1, 3]

    def test_empty_experiment_markdown(self):
        result = ExperimentResult(name="Empty", description="nothing")
        assert "(no rows)" in result.to_markdown()

    def test_mean_helper(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_scale_profiles(self):
        quick = ScaleProfile.quick()
        paper = ScaleProfile.paper()
        assert quick.database_sizes[-1] < paper.database_sizes[-1]
        assert paper.cohort_size == 169
