"""Unit tests for the tracing core (repro.obs.trace) and JSON logging.

Everything here is in-process and synchronous: span lifecycle and wire form,
W3C traceparent parsing, ambient (contextvar) propagation, the bounded trace
store's eviction behaviour, the slow-request log, and the structured log
formatter that stamps trace/span ids onto records.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.trace import (
    TRACEPARENT_HEADER,
    Span,
    SpanContext,
    Tracer,
    TraceStore,
    add_span_metrics,
    current_span,
    current_traceparent,
    operator_trace,
    operator_trace_enabled,
    span as obs_span,
)


class TestSpanContext:
    def test_traceparent_round_trip(self):
        ctx = SpanContext(trace_id="a" * 32, span_id="b" * 16)
        header = ctx.to_traceparent()
        assert header == f"00-{'a' * 32}-{'b' * 16}-01"
        parsed = SpanContext.parse(header)
        assert parsed == ctx

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-" + "b" * 16 + "-01",
            "00-" + "a" * 32 + "-short-01",
            "00-" + "g" * 32 + "-" + "b" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "xx-" + "a" * 32 + "-" + "b" * 16 + "-01",  # bad version
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert SpanContext.parse(header) is None

    def test_header_name_is_lowercase(self):
        # HTTP header lookup in the event loop is lowercase-normalized.
        assert TRACEPARENT_HEADER == TRACEPARENT_HEADER.lower()


class TestSpanLifecycle:
    def test_finish_sets_duration_and_wire_form(self):
        tracer = Tracer("svc")
        span = tracer.start_span("work", attributes={"k": "v"})
        span.add_metric("widgets", 2)
        span.add_metric("widgets", 3)
        tracer.finish_span(span)
        payload = span.to_dict()
        assert payload["name"] == "work"
        assert payload["service"] == "svc"
        assert payload["status"] == "ok"
        assert payload["duration"] >= 0.0
        assert payload["attributes"] == {"k": "v"}
        assert payload["metrics"] == {"widgets": 5}
        assert len(payload["trace_id"]) == 32 and len(payload["span_id"]) == 16
        json.dumps(payload)  # wire form must cross a multiprocessing queue

    def test_child_spans_share_trace_and_link_parent(self):
        tracer = Tracer("svc")
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
                assert current_span() is child
            assert current_span() is parent
        assert current_span() is None

    def test_explicit_none_parent_starts_new_root(self):
        tracer = Tracer("svc")
        with tracer.span("outer") as outer:
            with tracer.span("detached", parent=None) as detached:
                assert detached.trace_id != outer.trace_id
                assert detached.parent_id is None

    def test_remote_parent_continues_the_trace(self):
        tracer = Tracer("svc")
        remote = SpanContext.parse("00-" + "c" * 32 + "-" + "d" * 16 + "-01")
        with tracer.span("continued", parent=remote) as span:
            assert span.trace_id == "c" * 32
            assert span.parent_id == "d" * 16

    def test_exception_marks_span_as_error(self):
        tracer = Tracer("svc")
        store = []
        tracer.on_span = store.append
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = store
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError"

    def test_current_traceparent_reflects_ambient_span(self):
        assert current_traceparent() is None
        tracer = Tracer("svc")
        with tracer.span("work") as span:
            assert current_traceparent() == span.context.to_traceparent()
        assert current_traceparent() is None


class TestAmbientHelpers:
    def test_obs_span_is_noop_without_a_tracer(self):
        with obs_span("anything") as span:
            assert current_span() is None
        assert span is None  # the shared null span yields nothing

    def test_obs_span_records_under_active_tracer(self):
        tracer = Tracer("svc")
        with tracer.capture() as spans:
            with tracer.span("root"):
                with obs_span("phase", stage="x"):
                    pass
        names = [s["name"] for s in spans]
        assert names == ["phase", "root"]
        assert spans[0]["attributes"] == {"stage": "x"}

    def test_add_span_metrics_targets_the_current_span(self):
        add_span_metrics(orphan=1)  # no ambient span: silently dropped
        tracer = Tracer("svc")
        with tracer.capture() as spans:
            with tracer.span("solve"):
                add_span_metrics(conflicts=3, decisions=10)
                add_span_metrics(conflicts=2)
        assert spans[0]["metrics"] == {"conflicts": 5, "decisions": 10}

    def test_operator_trace_flag_nests_and_restores(self):
        assert not operator_trace_enabled()
        with operator_trace(True):
            assert operator_trace_enabled()
            with operator_trace(False):
                assert not operator_trace_enabled()
            assert operator_trace_enabled()
        assert not operator_trace_enabled()


class TestCaptureAndEmit:
    def test_capture_collects_only_spans_finished_inside(self):
        tracer = Tracer("svc")
        before = tracer.start_span("before")
        with tracer.capture() as spans:
            tracer.finish_span(before)
            with tracer.span("inside"):
                pass
        with tracer.span("after"):
            pass
        assert [s["name"] for s in spans] == ["before", "inside"]

    def test_emit_records_post_hoc_spans(self):
        tracer = Tracer("svc")
        with tracer.capture() as spans:
            with tracer.span("root") as root:
                tracer.emit(
                    "op.Scan",
                    parent=root,
                    start=123.0,
                    duration=0.5,
                    attributes={"rows": 7},
                )
        emitted = spans[0]
        assert emitted["name"] == "op.Scan"
        assert emitted["start"] == 123.0
        assert emitted["duration"] == 0.5
        assert emitted["parent_id"] == root.span_id
        assert emitted["trace_id"] == root.trace_id

    def test_slow_spans_land_in_the_slow_log(self):
        tracer = Tracer("svc", slow_threshold=0.0, slow_capacity=2)
        for index in range(3):
            with tracer.span(f"slow-{index}"):
                pass
        names = [s["name"] for s in tracer.slow_spans]
        assert names == ["slow-1", "slow-2"]  # bounded, oldest evicted

    def test_on_span_errors_never_break_recording(self):
        def explode(span):
            raise RuntimeError("observer bug")

        tracer = Tracer("svc", store=TraceStore(), on_span=explode)
        with tracer.span("work") as span:
            pass
        assert tracer.store.get(span.trace_id) is not None


class TestTraceStore:
    def _span(self, trace_id: str, name: str = "s") -> dict:
        return {
            "name": name,
            "trace_id": trace_id,
            "span_id": "b" * 16,
            "start": 0.0,
            "duration": 0.0,
            "status": "ok",
        }

    def test_snapshot_returns_newest_first(self):
        store = TraceStore()
        store.add(self._span("1" * 32))
        store.add(self._span("2" * 32))
        snapshot = store.snapshot()
        assert [t["trace_id"] for t in snapshot] == ["2" * 32, "1" * 32]

    def test_trace_eviction_is_lru_by_update(self):
        store = TraceStore(max_traces=2)
        store.add(self._span("1" * 32))
        store.add(self._span("2" * 32))
        store.add(self._span("1" * 32, "again"))  # touch 1: now most recent
        store.add(self._span("3" * 32))  # evicts 2, the stalest
        assert store.get("2" * 32) is None
        assert store.get("1" * 32) is not None
        assert store.get("3" * 32) is not None
        assert len(store) == 2

    def test_spans_per_trace_are_bounded_with_drop_count(self):
        store = TraceStore(max_spans_per_trace=3)
        for index in range(5):
            store.add(self._span("9" * 32, f"s{index}"))
        spans = store.get("9" * 32)
        assert len(spans) == 3
        (entry,) = store.snapshot()
        assert entry["dropped_spans"] == 2


class TestJsonLogging:
    def _formatted(self, log_call) -> dict:
        from repro.obs.logging import JsonLogFormatter

        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        logger = logging.getLogger("repro.test.obs")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        try:
            log_call(logger)
        finally:
            logger.removeHandler(handler)
        return json.loads(stream.getvalue())

    def test_lines_are_json_with_level_and_message(self):
        payload = self._formatted(lambda log: log.info("hello %s", "world"))
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test.obs"
        assert "ts" in payload

    def test_extra_fields_and_exceptions_are_included(self):
        def call(log):
            try:
                raise RuntimeError("kaboom")
            except RuntimeError:
                log.exception("failed", extra={"request_id": "r-1"})

        payload = self._formatted(call)
        assert payload["request_id"] == "r-1"
        assert "RuntimeError: kaboom" in payload["exc"]

    def test_ambient_span_ids_are_stamped(self):
        tracer = Tracer("svc")
        with tracer.span("work") as span:
            payload = self._formatted(lambda log: log.info("inside"))
        assert payload["trace_id"] == span.trace_id
        assert payload["span_id"] == span.span_id
        outside = self._formatted(lambda log: log.info("outside"))
        assert "trace_id" not in outside
