"""Unit tests for the annotation-generic execution engine."""

import pytest

from repro.catalog.instance import DatabaseInstance
from repro.datagen import toy_university_instance, university_schema
from repro.engine import (
    EngineSession,
    JoinOp,
    ScanOp,
    choose_build_sides,
    compile_plan,
    estimate_rows,
    plan_operators,
)
from repro.engine.structural import KeyCache, StructuralKey
from repro.errors import NotApplicableError, QueryEvaluationError
from repro.provenance import annotate
from repro.ra import (
    AggregateFunction,
    AggregateSpec,
    Evaluator,
    compute_aggregate,
    count,
    difference,
    eq,
    equals_constant,
    evaluate,
    group_by,
    project,
    relation,
    rename_prefix,
    select,
    theta_join,
)


@pytest.fixture()
def instance():
    return toy_university_instance()


def _cs_students():
    return project(
        theta_join(
            rename_prefix(relation("Student"), "s"),
            rename_prefix(relation("Registration"), "r"),
            eq("s.name", "r.name"),
        ),
        ["s.name"],
    )


class TestStructuralKeys:
    def test_structurally_equal_nodes_share_a_key(self):
        cache = KeyCache()
        a = _cs_students()
        b = _cs_students()
        assert a is not b
        assert cache.key(a) == cache.key(b)
        assert hash(cache.key(a)) == hash(cache.key(b))

    def test_distinct_queries_do_not_collide(self):
        key1 = StructuralKey(relation("Student"))
        key2 = StructuralKey(relation("Registration"))
        assert key1 != key2

    def test_key_cache_is_o1_for_repeat_objects(self):
        cache = KeyCache()
        node = _cs_students()
        assert cache.key(node) is cache.key(node)


class TestStructuralMemoization:
    def test_difference_sides_share_the_cache(self, instance):
        """Structurally equal subtrees on both sides of a Difference are
        evaluated once — the regression behind keying the memo by ``id``."""
        query = difference(_cs_students(), _cs_students())
        evaluator = Evaluator(instance, {})
        assert evaluator.rows(query) == []
        info = evaluator.session.cache_info()
        # One plan for the difference; both sides compile to the same subplan,
        # so the result cache holds difference + subplan + its descendants
        # once each, not twice.
        operators = plan_operators(
            compile_plan(query, instance.schema)  # unoptimized shape is an upper bound
        )
        distinct = len(set(operators))
        assert info["cached_results"] <= distinct

    def test_repeated_rows_calls_hit_the_cache(self, instance):
        evaluator = Evaluator(instance, {})
        first = evaluator.rows(_cs_students())
        second = evaluator.rows(_cs_students())  # a distinct but equal tree
        assert first == second
        info = evaluator.session.cache_info()
        assert info["plan_hits"] >= 1

    def test_param_independent_subplans_shared_across_bindings(self, instance):
        from repro.ra import ge, param

        session = EngineSession(instance)
        query = select(relation("Registration"), ge("grade", param("cutoff")))
        assert len(session.evaluate(query, {"cutoff": 95})) == 3
        baseline = session.cache_info()["cached_results"]
        assert len(session.evaluate(query, {"cutoff": 200})) == 0
        # Only the filter depends on the binding: the Registration scan is
        # reused, so exactly one new memo entry appears per extra binding.
        assert session.cache_info()["cached_results"] == baseline + 1

    def test_unhashable_param_values_still_evaluate(self, instance):
        from repro.ra.predicates import Comparison, Literal, Param

        # An exotic predicate comparing against an unhashable parameter value:
        # caching is skipped for the dependent subplan, results stay correct.
        query = select(
            relation("Student"),
            Comparison("=", Literal(["CS"]), Param("majors")),
        )
        session = EngineSession(instance)
        result = session.evaluate(query, {"majors": ["CS"]})
        assert len(result) == len(instance.relation("Student"))
        assert len(session.evaluate(query, {"majors": ["ECON"]})) == 0


class TestComputeAggregateErrors:
    def test_unknown_attribute_names_the_aggregate(self):
        schema = university_schema().relation("Registration")
        spec = AggregateSpec(AggregateFunction.SUM, "points", "total")
        with pytest.raises(QueryEvaluationError) as excinfo:
            compute_aggregate(spec, schema, [("Mary", "208D", "ECON", 95)])
        message = str(excinfo.value)
        assert "SUM(points)" in message
        assert "'points'" in message
        assert "total" in message

    def test_count_star_still_counts_rows(self):
        schema = university_schema().relation("Registration")
        spec = AggregateSpec(AggregateFunction.COUNT, None, "n")
        assert compute_aggregate(spec, schema, [("a",), ("b",)]) == 2

    def test_engine_group_by_raises_the_same_clear_error(self, instance):
        query = group_by(relation("Registration"), ["name"], [count("missing", "n")])
        with pytest.raises(Exception) as excinfo:
            evaluate(query, instance)
        assert "missing" in str(excinfo.value)


class TestHashIndex:
    def test_index_is_cached_and_maintained_across_mutation(self, instance):
        student = instance.relation("Student")
        index = student.hash_index((1,))
        assert index is student.hash_index((1,))
        assert set(index) == {("CS",), ("ECON",)}
        assert [values for _, values in index[("CS",)]] == [
            ("Mary", "CS"),
            ("Jesse", "CS"),
        ]
        # Mutations maintain the cached index in place (no rebuild): the
        # same object reflects the insert, and a delete that empties a
        # bucket removes the bucket entirely.
        tid = student.insert(("Alice", "CS"))
        maintained = student.hash_index((1,))
        assert maintained is index
        assert len(maintained[("CS",)]) == 3
        assert (tid, ("Alice", "CS")) in maintained[("CS",)]
        for econ_tid, _values in list(index[("ECON",)]):
            student.delete(econ_tid)
        assert ("ECON",) not in student.hash_index((1,))

    def test_data_version_tracks_inserts(self, instance):
        before = instance.data_version
        instance.insert("Student", ("Zoe", "CS"))
        assert instance.data_version == before + 1


class TestSessionInvalidation:
    def test_session_sees_inserts(self, instance):
        session = EngineSession(instance)
        query = select(relation("Student"), equals_constant("major", "CS"))
        assert len(session.evaluate(query)) == 2
        instance.insert("Student", ("Alice", "CS"))
        assert len(session.evaluate(query)) == 3
        # The insert is absorbed differentially: cached entries over Student
        # are patched in place instead of wholesale invalidation.
        info = session.cache_info()
        assert info["invalidations"] == 0
        assert info["delta_patched"] >= 1

    def test_annotate_sees_inserts_through_facade(self, instance):
        query = relation("Student")
        before = annotate(query, instance)
        tid = instance.insert("Student", ("Alice", "CS"))
        after = annotate(query, instance)
        assert ("Alice", "CS") not in before
        assert after.expression_for(("Alice", "CS")).variables() == {tid}


class TestOptimizer:
    def test_build_side_prefers_the_smaller_input(self):
        schema = university_schema()
        instance = DatabaseInstance(schema)
        for i in range(3):
            instance.insert("Student", (f"s{i}", "CS"))
        for i in range(50):
            instance.insert("Registration", (f"s{i % 3}", f"c{i}", "CS", 90))
        join = theta_join(
            rename_prefix(relation("Registration"), "r"),
            rename_prefix(relation("Student"), "s"),
            eq("r.name", "s.name"),
        )
        plan = choose_build_sides(compile_plan(join, schema), instance)
        join_ops = [op for op in plan_operators(plan) if isinstance(op, JoinOp)]
        assert len(join_ops) == 1
        # Left input (Registration) is larger, so the hash table builds right.
        assert not join_ops[0].build_left

        flipped = theta_join(
            rename_prefix(relation("Student"), "s"),
            rename_prefix(relation("Registration"), "r"),
            eq("s.name", "r.name"),
        )
        plan = choose_build_sides(compile_plan(flipped, schema), instance)
        join_ops = [op for op in plan_operators(plan) if isinstance(op, JoinOp)]
        assert join_ops[0].build_left

    def test_estimates_scale_with_relation_sizes(self, instance):
        scan = compile_plan(relation("Registration"), instance.schema)
        assert estimate_rows(scan, instance) == len(instance.relation("Registration"))
        filtered = compile_plan(
            select(relation("Registration"), equals_constant("dept", "CS")),
            instance.schema,
        )
        assert estimate_rows(filtered, instance) < estimate_rows(scan, instance)

    def test_rename_compiles_away(self, instance):
        plain = compile_plan(relation("Student"), instance.schema)
        renamed = compile_plan(rename_prefix(relation("Student"), "s"), instance.schema)
        assert plain == renamed == ScanOp("Student")

    def test_division_predicates_are_not_pushed_past_joins(self):
        """Pushdown must not evaluate a/b on rows the join would eliminate."""
        from repro.catalog.schema import DatabaseSchema, RelationSchema
        from repro.catalog.types import DataType
        from repro.engine.reference import ReferenceEvaluator
        from repro.ra import gt
        from repro.ra.predicates import Arithmetic, ColumnRef, Comparison, Literal

        schema = DatabaseSchema.of(
            [
                RelationSchema.of(
                    "A", [("k", DataType.INT), ("a", DataType.INT), ("b", DataType.INT)]
                ),
                RelationSchema.of("B", [("k2", DataType.INT)]),
            ]
        )
        instance = DatabaseInstance(schema)
        instance.insert("A", (1, 4, 2))
        instance.insert("A", (2, 1, 0))  # never joins; a/b would divide by zero
        instance.insert("B", (1,))
        query = select(
            theta_join(relation("A"), relation("B"), eq("k", "k2")),
            Comparison(">", Arithmetic("/", ColumnRef("a"), ColumnRef("b")), Literal(1)),
        )
        expected = set(ReferenceEvaluator(instance, {}).rows(query))
        assert set(evaluate(query, instance).rows) == expected == {(1, 4, 2, 1)}

    def test_mixed_type_comparisons_are_not_pushed_past_joins(self):
        """An ordered string-vs-number comparison raises only on the rows it
        sees; pushdown must not make it see rows an empty join eliminates."""
        from repro.catalog.schema import DatabaseSchema, RelationSchema
        from repro.catalog.types import DataType
        from repro.engine.reference import ReferenceEvaluator
        from repro.ra import col, lit, lt

        schema = DatabaseSchema.of(
            [
                RelationSchema.of("R", [("a", DataType.STRING), ("k", DataType.INT)]),
                RelationSchema.of("S", [("k2", DataType.INT)]),
            ]
        )
        instance = DatabaseInstance(schema)
        instance.insert("R", ("x", 1))  # 'x' < 5 raises TypeError if evaluated
        query = select(
            theta_join(relation("R"), relation("S"), eq("k", "k2")),
            lt(col("a"), lit(5)),
        )
        expected = ReferenceEvaluator(instance, {}).rows(query)
        assert list(evaluate(query, instance).rows) == expected == []

    def test_param_predicates_are_not_pushed_past_joins(self, instance):
        """An unbound @param raises only if its selection sees rows; pushdown
        must not move it below a join that filters all rows out."""
        from repro.engine.reference import ReferenceEvaluator
        from repro.ra.predicates import ColumnRef, Comparison, Param

        query = select(
            theta_join(
                rename_prefix(relation("Student"), "s"),
                rename_prefix(relation("Registration"), "r"),
                eq("s.major", "r.grade"),  # never matches: no rows flow
            ),
            Comparison("=", ColumnRef("s.name"), Param("x")),
        )
        expected = ReferenceEvaluator(instance, {}).rows(query)
        assert list(evaluate(query, instance).rows) == expected == []


class TestCardinalityMemoization:
    def test_deep_join_chain_estimates_each_node_once(self, instance, monkeypatch):
        """A 12-deep join chain is estimated in one pass per distinct node.

        The regression: estimates recomputed per parent made optimization
        O(n^2)-to-exponential in join depth.  The memo must bound ``_compute``
        calls by the number of structurally distinct plan nodes.
        """
        from repro.engine import CardinalityEstimator

        query = rename_prefix(relation("Student"), "s")
        for i in range(12):
            query = theta_join(
                query,
                rename_prefix(relation("Registration"), f"r{i}"),
                eq("s.name", f"r{i}.name"),
            )
        plan = compile_plan(query, instance.schema)
        distinct_nodes = len(set(plan_operators(plan)))

        calls = 0
        original = CardinalityEstimator._compute

        def counting(self, node):
            nonlocal calls
            calls += 1
            return original(self, node)

        monkeypatch.setattr(CardinalityEstimator, "_compute", counting)
        estimator = CardinalityEstimator(instance)
        estimator.estimate(plan)
        assert calls <= distinct_nodes
        # Re-estimating any subtree is a pure memo hit.
        calls = 0
        estimator.estimate(plan)
        assert calls == 0

    def test_estimator_rejects_unknown_plan_nodes(self, instance):
        """Dispatch is exhaustive: an unhandled node type raises instead of
        silently estimating 1.0 (the bug that made every new operator's
        subtree look free)."""
        from dataclasses import dataclass

        from repro.engine import CardinalityEstimator, PlanNode

        @dataclass(frozen=True)
        class MysteryOp(PlanNode):
            def children(self):
                return ()

        with pytest.raises(TypeError, match="no cardinality estimate"):
            CardinalityEstimator(instance).estimate(MysteryOp())


class TestScopedPushdown:
    def test_pushdown_scoped_to_raising_subtree(self, instance):
        """A raising predicate disables pushdown only for its own subtree.

        The regression: one division predicate anywhere used to veto pushdown
        for the *whole* expression; now the sibling union branch is still
        optimized while the raising branch keeps its original shape.
        """
        from repro.engine import optimize_expression
        from repro.ra.ast import union
        from repro.ra.predicates import Arithmetic, ColumnRef, Comparison, Literal

        join = theta_join(
            rename_prefix(relation("Student"), "s"),
            rename_prefix(relation("Registration"), "r"),
            eq("s.name", "r.name"),
        )
        risky = select(
            join,
            Comparison(">", Arithmetic("/", Literal(100), ColumnRef("r.grade")), Literal(1)),
        )
        safe = select(join, equals_constant("s.major", "CS"))
        query = union(risky, safe)
        optimized = optimize_expression(query, instance.schema)
        # Raising branch untouched; sibling branch rewritten (selection pushed).
        assert optimized.left == risky
        assert optimized.right != safe
        fast = EngineSession(instance, optimize=True)
        exact = EngineSession(instance, optimize=False)
        assert fast.evaluate(query).rows == exact.evaluate(query).rows


class TestJoinReordering:
    def _three_way_instance(self):
        from repro.catalog.schema import DatabaseSchema, RelationSchema
        from repro.catalog.types import DataType

        schema = DatabaseSchema.of(
            [
                RelationSchema.of("Big", [("k", DataType.INT), ("v", DataType.INT)]),
                RelationSchema.of("Mid", [("k", DataType.INT)]),
                RelationSchema.of("Tiny", [("k", DataType.INT)]),
            ]
        )
        instance = DatabaseInstance(schema)
        for i in range(200):
            instance.insert("Big", (i, i * 2))
        for i in range(50):
            instance.insert("Mid", (i,))
        instance.insert("Tiny", (0,))
        instance.insert("Tiny", (1,))
        return instance

    def _three_way_query(self):
        return theta_join(
            theta_join(
                rename_prefix(relation("Big"), "a"),
                rename_prefix(relation("Mid"), "b"),
                eq("a.k", "b.k"),
            ),
            rename_prefix(relation("Tiny"), "c"),
            eq("a.k", "c.k"),
        )

    def test_reorder_starts_from_the_cheapest_pair(self):
        from repro.engine import ProjectOp, reorder_joins

        instance = self._three_way_instance()
        plan = compile_plan(self._three_way_query(), instance.schema)
        reordered = reorder_joins(plan, instance)
        assert reordered != plan
        # The deepest (first-executed) join must involve Tiny, not Big ⋈ Mid.
        node = reordered
        while isinstance(node.children()[0], (JoinOp, ProjectOp)):
            node = node.children()[0]
        assert isinstance(node, JoinOp)
        first_scans = {
            op.relation for op in plan_operators(node) if isinstance(op, ScanOp)
        }
        assert "Tiny" in first_scans

    def test_reordered_plans_return_the_same_rows(self):
        instance = self._three_way_instance()
        query = self._three_way_query()
        fast = EngineSession(instance, optimize=True)
        exact = EngineSession(instance, optimize=False)
        rows = fast.evaluate(query).rows
        assert rows == exact.evaluate(query).rows
        assert rows  # non-degenerate: the join actually produces tuples


class TestSemijoinReduction:
    def _fk_instance(self):
        from repro.catalog.constraints import ForeignKeyConstraint
        from repro.catalog.schema import DatabaseSchema, RelationSchema
        from repro.catalog.types import DataType

        schema = DatabaseSchema.of(
            [
                RelationSchema.of("Child", [("k", DataType.INT), ("v", DataType.INT)]),
                RelationSchema.of("Parent", [("k", DataType.INT)]),
            ]
        )
        schema.add_constraint(ForeignKeyConstraint("Child", ("k",), "Parent", ("k",)))
        instance = DatabaseInstance(schema)
        for i in range(100):
            instance.insert("Child", (i % 50, i))
        for i in range(5):
            instance.insert("Parent", (i,))
        return instance

    def test_fk_join_gains_a_semijoin_filter(self):
        from repro.engine import SemiJoinOp, apply_semijoin_reduction
        from repro.ra import gt
        from repro.ra.predicates import col, lit

        instance = self._fk_instance()
        query = theta_join(
            select(rename_prefix(relation("Child"), "c"), gt(col("c.v"), lit(10))),
            rename_prefix(relation("Parent"), "p"),
            eq("c.k", "p.k"),
        )
        plan = compile_plan(query, instance.schema)
        reduced = apply_semijoin_reduction(plan, instance)
        semis = [op for op in plan_operators(reduced) if isinstance(op, SemiJoinOp)]
        assert len(semis) == 1
        fast = EngineSession(instance, optimize=True)
        exact = EngineSession(instance, optimize=False)
        rows = fast.evaluate(query).rows
        assert rows == exact.evaluate(query).rows
        assert rows


class TestColumnarExecution:
    def test_hot_operators_return_column_batches(self, instance):
        from repro.engine import ColumnBatch
        from repro.engine.domains import SET_DOMAIN
        from repro.engine.physical import PlanExecutor

        plan = compile_plan(_cs_students(), instance.schema)
        executor = PlanExecutor(instance, {}, SET_DOMAIN, {}, columnar=True)
        assert isinstance(executor.run_cached(plan), ColumnBatch)

    def test_columnar_rows_match_dict_path_in_order(self, instance):
        from repro.engine.domains import SET_DOMAIN
        from repro.engine.physical import PlanExecutor

        plan = compile_plan(_cs_students(), instance.schema)
        dict_rows = PlanExecutor(instance, {}, SET_DOMAIN, {}).run(plan)
        col_rows = PlanExecutor(instance, {}, SET_DOMAIN, {}, columnar=True).run(plan)
        # Same rows *and* the same first-seen order: downstream consumers
        # (and the provenance bit-compatibility story) rely on it.
        assert list(dict_rows.items()) == list(col_rows.items())

    def test_provenance_domain_is_never_lowered(self, instance):
        from repro.engine.domains import PROVENANCE_DOMAIN
        from repro.engine.physical import PlanExecutor

        executor = PlanExecutor(instance, {}, PROVENANCE_DOMAIN, {}, columnar=True)
        assert executor.columnar is False


class TestProvenanceDomainViaEngine:
    def test_group_by_still_rejected_with_same_message(self, instance):
        query = group_by(relation("Registration"), ["name"], [count(None, "n")])
        with pytest.raises(NotApplicableError, match="how-provenance does not cover"):
            annotate(query, instance)

    def test_optimized_and_exact_evaluation_agree(self, instance):
        query = select(
            difference(
                _cs_students(),
                project(relation("Student"), ["name"]),
            ),
            equals_constant("s.name", "Mary"),
        )
        optimized = EngineSession(instance, optimize=True)
        exact = EngineSession(instance, optimize=False)
        assert optimized.evaluate(query).rows == exact.evaluate(query).rows
