"""Tests for scalar and predicate expressions."""

import pytest

from repro.catalog import DataType, RelationSchema
from repro.errors import QueryEvaluationError
from repro.ra.predicates import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Param,
    TruePredicate,
    col,
    conj,
    eq,
    equals_constant,
    ge,
    gt,
    le,
    lit,
    lt,
    neq,
    param,
)

SCHEMA = RelationSchema.of(
    "R", [("name", DataType.STRING), ("grade", DataType.INT), ("dept", DataType.STRING)]
)
ROW = ("Mary", 95, "CS")


def evaluate(predicate, row=ROW, params=None):
    return predicate.evaluate(SCHEMA, row, params or {})


class TestScalars:
    def test_column_ref(self):
        assert ColumnRef("grade").evaluate(SCHEMA, ROW, {}) == 95

    def test_column_ref_unknown(self):
        with pytest.raises(QueryEvaluationError):
            ColumnRef("gpa").evaluate(SCHEMA, ROW, {})

    def test_literal(self):
        assert Literal(42).evaluate(SCHEMA, ROW, {}) == 42

    def test_param_bound(self):
        assert Param("k").evaluate(SCHEMA, ROW, {"k": 3}) == 3

    def test_param_unbound(self):
        with pytest.raises(QueryEvaluationError):
            Param("k").evaluate(SCHEMA, ROW, {})

    def test_param_substitution(self):
        substituted = Param("k").substitute_params({"k": 7})
        assert isinstance(substituted, Literal)
        assert substituted.value == 7

    def test_arithmetic(self):
        expr = Arithmetic("+", ColumnRef("grade"), Literal(5))
        assert expr.evaluate(SCHEMA, ROW, {}) == 100

    def test_arithmetic_division_by_zero(self):
        expr = Arithmetic("/", Literal(1), Literal(0))
        with pytest.raises(QueryEvaluationError):
            expr.evaluate(SCHEMA, ROW, {})

    def test_arithmetic_unknown_operator(self):
        with pytest.raises(QueryEvaluationError):
            Arithmetic("%", Literal(1), Literal(2))


class TestComparisons:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", False), ("<=", False), (">", True), (">=", True)],
    )
    def test_operators(self, op, expected):
        predicate = Comparison(op, ColumnRef("grade"), Literal(90))
        assert evaluate(predicate) is expected

    def test_unknown_operator(self):
        with pytest.raises(QueryEvaluationError):
            Comparison("~", ColumnRef("grade"), Literal(90))

    def test_null_comparison_is_false(self):
        predicate = Comparison("=", ColumnRef("name"), Literal("Mary"))
        assert predicate.evaluate(SCHEMA, (None, 95, "CS"), {}) is False

    def test_string_equality(self):
        assert evaluate(eq(col("dept"), lit("CS")))
        assert not evaluate(eq(col("dept"), lit("ECON")))

    def test_referenced_columns_and_params(self):
        predicate = Comparison(">=", ColumnRef("grade"), Param("threshold"))
        assert predicate.referenced_columns() == {"grade"}
        assert predicate.referenced_params() == {"threshold"}


class TestLogical:
    def test_and_or_not(self):
        p = And((gt("grade", lit(90)), eq(col("dept"), lit("CS"))))
        assert evaluate(p)
        q = Or((eq(col("dept"), lit("ECON")), lt("grade", lit(50))))
        assert not evaluate(q)
        assert evaluate(Not(q))

    def test_empty_and_rejected(self):
        with pytest.raises(QueryEvaluationError):
            And(())

    def test_conjuncts_flattening(self):
        p = And((And((eq("name", "name"), TruePredicate())), gt("grade", lit(0))))
        assert len(p.conjuncts()) == 3

    def test_conj_of_empty_is_true(self):
        assert isinstance(conj([]), TruePredicate)

    def test_operator_overloads(self):
        p = eq(col("dept"), lit("CS")) & gt("grade", lit(90))
        assert evaluate(p)
        q = ~p | le("grade", lit(10))
        assert not evaluate(q)

    def test_substitute_params_recursive(self):
        p = And((ge("grade", param("k")), eq(col("dept"), lit("CS"))))
        bound = p.substitute_params({"k": 90})
        assert evaluate(bound)
        assert bound.referenced_params() == set()


class TestHelpers:
    def test_equals_constant_keeps_string_literal(self):
        predicate = equals_constant("dept", "CS")
        assert isinstance(predicate.right, Literal)
        assert evaluate(predicate)

    def test_eq_treats_bare_strings_as_columns(self):
        predicate = eq("name", "name")
        assert isinstance(predicate.left, ColumnRef)
        assert evaluate(predicate)

    def test_neq(self):
        assert evaluate(neq(col("dept"), lit("ECON")))

    def test_str_renderings(self):
        assert "grade >= @k" in str(ge("grade", param("k")))
        assert "'CS'" in str(equals_constant("dept", "CS"))
