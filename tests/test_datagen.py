"""Tests for the data generators: determinism, constraints, scale knobs."""

import pytest

from repro.datagen import (
    beers_instance,
    toy_beers_instance,
    toy_university_instance,
    tpch_instance,
    tpch_schema,
    university_instance,
    university_instance_with_size,
    university_schema,
)


class TestUniversityGenerator:
    def test_toy_instance_matches_figure1(self):
        instance = toy_university_instance()
        assert instance.lookup("Student:1") == ("Mary", "CS")
        assert instance.lookup("Registration:8") == ("Jesse", "330", "CS", 85)
        assert instance.satisfies_constraints()

    def test_deterministic_for_seed(self):
        a = university_instance(30, seed=5)
        b = university_instance(30, seed=5)
        assert [r for _, r in a.relation("Registration").tuples()] == [
            r for _, r in b.relation("Registration").tuples()
        ]

    def test_different_seeds_differ(self):
        a = university_instance(30, seed=5)
        b = university_instance(30, seed=6)
        assert a.relation("Registration").value_set() != b.relation("Registration").value_set()

    def test_constraints_hold(self):
        instance = university_instance(50, seed=1)
        assert instance.satisfies_constraints()

    def test_size_targeting(self):
        for target in (200, 1000, 3000):
            instance = university_instance_with_size(target, seed=2)
            assert abs(instance.total_size() - target) / target < 0.25

    def test_size_targeting_rejects_tiny(self):
        with pytest.raises(ValueError):
            university_instance_with_size(5)

    def test_cs_courses_present_at_every_scale(self):
        instance = university_instance(20, seed=9)
        depts = {row[2] for _, row in instance.relation("Registration").tuples()}
        assert "CS" in depts

    def test_schema_without_foreign_keys(self):
        schema = university_schema(with_foreign_keys=False)
        assert not schema.foreign_keys()
        assert university_schema().foreign_keys()


class TestBeersGenerator:
    def test_toy_instance_valid(self):
        assert toy_beers_instance().satisfies_constraints()

    def test_generated_instance_valid_and_deterministic(self):
        a = beers_instance(num_drinkers=20, num_bars=8, num_beers=6, seed=4)
        b = beers_instance(num_drinkers=20, num_bars=8, num_beers=6, seed=4)
        assert a.satisfies_constraints()
        assert a.relation("Serves").value_set() == b.relation("Serves").value_set()

    def test_corner_cases_present(self):
        instance = beers_instance(num_drinkers=30, num_bars=9, num_beers=6, seed=2)
        drinkers = {row[0] for _, row in instance.relation("Drinker").tuples()}
        frequenters = {row[0] for _, row in instance.relation("Frequents").tuples()}
        assert drinkers - frequenters, "expected some drinker who frequents no bar"
        bars = {row[0] for _, row in instance.relation("Bar").tuples()}
        serving = {row[0] for _, row in instance.relation("Serves").tuples()}
        assert bars - serving, "expected some bar that serves nothing"


class TestTpchGenerator:
    def test_schema_has_eight_tables(self):
        assert len(tpch_schema().relation_names) == 8

    def test_instance_valid_and_scaled(self):
        small = tpch_instance(scale=0.05, seed=3)
        large = tpch_instance(scale=0.2, seed=3)
        assert small.satisfies_constraints()
        assert large.total_size() > small.total_size()

    def test_deterministic(self):
        a = tpch_instance(scale=0.05, seed=8)
        b = tpch_instance(scale=0.05, seed=8)
        assert a.relation("orders").value_set() == b.relation("orders").value_set()

    def test_lineitems_reference_orders(self):
        instance = tpch_instance(scale=0.05, seed=1)
        order_keys = {row[0] for _, row in instance.relation("orders").tuples()}
        for _, row in instance.relation("lineitem").tuples():
            assert row[0] in order_keys

    def test_late_lineitems_exist(self):
        instance = tpch_instance(scale=0.05, seed=1)
        late = [
            row
            for _, row in instance.relation("lineitem").tuples()
            if row[7] > row[6]  # receipt after commit
        ]
        assert late
