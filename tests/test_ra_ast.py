"""Tests for the relational algebra AST: schema inference and tree utilities."""

import pytest

from repro.catalog import DataType
from repro.datagen import university_schema
from repro.errors import SchemaError, UnknownAttributeError
from repro.ra import (
    AggregateFunction,
    AggregateSpec,
    Difference,
    GroupBy,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
    avg,
    count,
    difference,
    eq,
    equals_constant,
    group_by,
    intersection,
    natural_join,
    project,
    relation,
    rename_prefix,
    select,
    theta_join,
    union,
)

DB = university_schema()


class TestSchemaInference:
    def test_relation_ref(self):
        assert relation("Student").output_schema(DB).attribute_names == ("name", "major")

    def test_selection_keeps_schema(self):
        expr = select(relation("Student"), equals_constant("major", "CS"))
        assert expr.output_schema(DB).attribute_names == ("name", "major")

    def test_selection_unknown_column(self):
        expr = select(relation("Student"), equals_constant("gpa", 4))
        with pytest.raises(UnknownAttributeError):
            expr.output_schema(DB)

    def test_projection_with_aliases(self):
        expr = project(relation("Student"), ["name"], ["student_name"])
        assert expr.output_schema(DB).attribute_names == ("student_name",)

    def test_projection_alias_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Projection(relation("Student"), ("name",), ("a", "b"))

    def test_projection_empty_rejected(self):
        with pytest.raises(SchemaError):
            Projection(relation("Student"), ())

    def test_rename_prefix(self):
        expr = rename_prefix(relation("Student"), "s")
        assert expr.output_schema(DB).attribute_names == ("s.name", "s.major")

    def test_rename_mapping(self):
        expr = Rename(relation("Student"), attribute_mapping=(("name", "who"),))
        assert expr.output_schema(DB).attribute_names == ("who", "major")

    def test_theta_join_requires_disjoint_names(self):
        expr = theta_join(relation("Student"), relation("Registration"))
        with pytest.raises(SchemaError):
            expr.output_schema(DB)

    def test_theta_join_schema(self):
        expr = theta_join(
            rename_prefix(relation("Student"), "s"),
            rename_prefix(relation("Registration"), "r"),
            eq("s.name", "r.name"),
        )
        assert len(expr.output_schema(DB).attributes) == 6

    def test_theta_join_unknown_predicate_column(self):
        expr = theta_join(
            rename_prefix(relation("Student"), "s"),
            rename_prefix(relation("Registration"), "r"),
            eq("s.name", "bogus"),
        )
        with pytest.raises(UnknownAttributeError):
            expr.output_schema(DB)

    def test_natural_join_merges_shared(self):
        expr = natural_join(relation("Student"), relation("Registration"))
        names = expr.output_schema(DB).attribute_names
        assert names == ("name", "major", "course", "dept", "grade")

    def test_union_compatible(self):
        expr = union(project(relation("Student"), ["name"]), project(relation("Registration"), ["name"]))
        assert expr.output_schema(DB).attribute_names == ("name",)

    def test_union_incompatible(self):
        expr = union(relation("Student"), relation("Registration"))
        with pytest.raises(SchemaError):
            expr.output_schema(DB)

    def test_difference_and_intersection_schema(self):
        left = project(relation("Student"), ["name"])
        right = project(relation("Registration"), ["name"])
        assert difference(left, right).output_schema(DB).arity == 1
        assert intersection(left, right).output_schema(DB).arity == 1

    def test_group_by_schema(self):
        expr = group_by(relation("Registration"), ["name"], [count(None, "n"), avg("grade", "g")])
        schema = expr.output_schema(DB)
        assert schema.attribute_names == ("name", "n", "g")
        assert schema.attribute("n").dtype is DataType.INT
        assert schema.attribute("g").dtype is DataType.FLOAT

    def test_group_by_sum_requires_numeric(self):
        expr = group_by(
            relation("Registration"),
            ["name"],
            [AggregateSpec(AggregateFunction.SUM, "dept", "s")],
        )
        with pytest.raises(SchemaError):
            expr.output_schema(DB)

    def test_aggregate_requires_attribute(self):
        with pytest.raises(SchemaError):
            AggregateSpec(AggregateFunction.AVG, None, "a")

    def test_duplicate_aggregate_aliases(self):
        with pytest.raises(SchemaError):
            GroupBy(relation("Registration"), ("name",), (count(None, "n"), count("grade", "n")))


class TestTreeUtilities:
    def _example(self):
        q2 = project(
            theta_join(
                rename_prefix(relation("Student"), "s"),
                rename_prefix(relation("Registration"), "r"),
                eq("s.name", "r.name"),
            ),
            ["s.name"],
        )
        return difference(q2, project(relation("Student"), ["name"]))

    def test_walk_and_operator_count(self):
        expr = self._example()
        assert expr.operator_count() == 6
        assert sum(1 for node in expr.walk() if isinstance(node, RelationRef)) == 3

    def test_height(self):
        expr = self._example()
        assert expr.height() == 5

    def test_base_relations(self):
        assert self._example().base_relations() == {"Student", "Registration"}

    def test_with_children_roundtrip(self):
        expr = self._example()
        rebuilt = expr.with_children(list(expr.children()))
        assert str(rebuilt) == str(expr)

    def test_with_children_wrong_arity(self):
        with pytest.raises(SchemaError):
            self._example().with_children([relation("Student")])

    def test_str_contains_operators(self):
        rendered = str(self._example())
        assert "π" in rendered and "⋈" in rendered and "−" in rendered
