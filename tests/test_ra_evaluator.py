"""Tests for set-semantics evaluation of RA expressions (Figures 1–2 of the paper)."""

import pytest

from repro.datagen import toy_university_instance
from repro.ra import (
    agg_max,
    agg_min,
    agg_sum,
    avg,
    conj,
    count,
    difference,
    eq,
    equals_constant,
    evaluate,
    ge,
    group_by,
    intersection,
    lit,
    col,
    natural_join,
    project,
    relation,
    rename_prefix,
    results_differ,
    select,
    theta_join,
    union,
)
from repro.ra.evaluator import split_equijoin_conjuncts
from repro.datagen import university_schema


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


def rows(expr, instance, params=None):
    return set(evaluate(expr, instance, params).rows)


class TestBasicOperators:
    def test_relation_scan(self, instance):
        assert rows(relation("Student"), instance) == {
            ("Mary", "CS"),
            ("John", "ECON"),
            ("Jesse", "CS"),
        }

    def test_selection(self, instance):
        expr = select(relation("Registration"), equals_constant("dept", "ECON"))
        assert rows(expr, instance) == {
            ("Mary", "208D", "ECON", 95),
            ("John", "208D", "ECON", 88),
        }

    def test_selection_with_param(self, instance):
        from repro.ra import param

        expr = select(relation("Registration"), ge("grade", param("cutoff")))
        assert len(rows(expr, instance, {"cutoff": 95})) == 3

    def test_projection_deduplicates(self, instance):
        expr = project(relation("Registration"), ["dept"])
        assert rows(expr, instance) == {("CS",), ("ECON",)}

    def test_projection_reorders(self, instance):
        expr = project(relation("Student"), ["major", "name"])
        assert ("CS", "Mary") in rows(expr, instance)

    def test_theta_join_matches_figure2(self, instance):
        q2 = project(
            theta_join(
                rename_prefix(relation("Student"), "s"),
                rename_prefix(relation("Registration"), "r"),
                conj([eq("s.name", "r.name"), eq(col("r.dept"), lit("CS"))]),
            ),
            ["s.name", "s.major"],
        )
        assert rows(q2, instance) == {("Mary", "CS"), ("John", "ECON"), ("Jesse", "CS")}

    def test_cross_product(self, instance):
        expr = theta_join(
            rename_prefix(relation("Student"), "a"), rename_prefix(relation("Student"), "b")
        )
        assert len(rows(expr, instance)) == 9

    def test_natural_join(self, instance):
        expr = natural_join(relation("Student"), relation("Registration"))
        result = rows(expr, instance)
        assert ("Mary", "CS", "216", "CS", 100) in result
        assert len(result) == 8

    def test_union(self, instance):
        expr = union(
            project(select(relation("Registration"), equals_constant("dept", "CS")), ["name"]),
            project(select(relation("Registration"), equals_constant("dept", "ECON")), ["name"]),
        )
        assert rows(expr, instance) == {("Mary",), ("John",), ("Jesse",)}

    def test_difference(self, instance):
        expr = difference(
            project(relation("Student"), ["name"]),
            project(select(relation("Registration"), equals_constant("dept", "ECON")), ["name"]),
        )
        assert rows(expr, instance) == {("Jesse",)}

    def test_intersection(self, instance):
        expr = intersection(
            project(select(relation("Registration"), equals_constant("dept", "CS")), ["name"]),
            project(select(relation("Registration"), equals_constant("dept", "ECON")), ["name"]),
        )
        assert rows(expr, instance) == {("Mary",), ("John",)}

    def test_results_differ(self, instance, example1_q1, example1_q2):
        assert results_differ(example1_q1, example1_q2, instance)
        assert not results_differ(example1_q1, example1_q1, instance)


class TestRunningExample:
    def test_q1_result_matches_figure2(self, instance, example1_q1):
        assert rows(example1_q1, instance) == {("John", "ECON")}

    def test_q2_result_matches_figure2(self, instance, example1_q2):
        assert rows(example1_q2, instance) == {
            ("Mary", "CS"),
            ("John", "ECON"),
            ("Jesse", "CS"),
        }

    def test_counterexample_subinstance(self, instance, example1_q1, example1_q2):
        # {t1, t4, t5} from Example 2 is a counterexample.
        sub = instance.subinstance({"Student:1", "Registration:1", "Registration:2"})
        assert results_differ(example1_q1, example1_q2, sub)

    def test_non_counterexample_subinstance(self, instance, example1_q1, example1_q2):
        # Keeping only one of Mary's CS courses makes the two queries agree.
        sub = instance.subinstance({"Student:1", "Registration:1"})
        assert not results_differ(example1_q1, example1_q2, sub)


class TestAggregates:
    def test_avg_per_group_example4(self, instance):
        q2 = group_by(
            natural_join(relation("Student"), relation("Registration")),
            ["name"],
            [avg("grade", "avg_grade")],
        )
        result = dict((row[0], row[1]) for row in evaluate(q2, instance).rows)
        assert result["Mary"] == 90
        assert result["John"] == 89
        # All three of Jesse's registrations are CS courses (95, 90, 85).
        assert result["Jesse"] == 90

    def test_count_sum_min_max(self, instance):
        expr = group_by(
            relation("Registration"),
            ["name"],
            [count(None, "n"), agg_sum("grade", "total"), agg_min("grade", "lo"), agg_max("grade", "hi")],
        )
        by_name = {row[0]: row[1:] for row in evaluate(expr, instance).rows}
        assert by_name["Mary"] == (3, 270, 75, 100)
        assert by_name["Jesse"] == (3, 270, 85, 95)

    def test_having_via_selection(self, instance):
        expr = select(
            group_by(
                select(relation("Registration"), equals_constant("dept", "CS")),
                ["name"],
                [count(None, "n")],
            ),
            ge("n", lit(3)),
        )
        assert rows(expr, instance) == {("Jesse", 3)}

    def test_global_aggregate_empty_group_by(self, instance):
        expr = group_by(relation("Registration"), [], [count(None, "n")])
        assert rows(expr, instance) == {(8,)}

    def test_aggregate_over_empty_input(self, instance):
        expr = group_by(
            select(relation("Registration"), equals_constant("dept", "NOPE")),
            ["name"],
            [count(None, "n")],
        )
        assert rows(expr, instance) == set()


class TestHashJoinPlanning:
    def test_split_equijoin_conjuncts(self):
        db = university_schema()
        left = rename_prefix(relation("Student"), "s").output_schema(db)
        right = rename_prefix(relation("Registration"), "r").output_schema(db)
        predicate = conj([eq("s.name", "r.name"), eq(col("r.dept"), lit("CS"))])
        pairs, residual = split_equijoin_conjuncts(predicate, left, right)
        assert pairs == [("s.name", "r.name")]
        assert len(residual) == 1

    def test_reversed_equijoin_detected(self):
        db = university_schema()
        left = rename_prefix(relation("Student"), "s").output_schema(db)
        right = rename_prefix(relation("Registration"), "r").output_schema(db)
        pairs, residual = split_equijoin_conjuncts(eq("r.name", "s.name"), left, right)
        assert pairs == [("s.name", "r.name")]
        assert not residual

    def test_hash_and_nested_loop_agree(self, instance):
        # The same join once with an equi conjunct and once as a filtered cross
        # product must give identical results.
        s = rename_prefix(relation("Student"), "s")
        r = rename_prefix(relation("Registration"), "r")
        with_equi = theta_join(s, r, eq("s.name", "r.name"))
        as_filter = select(theta_join(s, r), eq("s.name", "r.name"))
        assert rows(with_equi, instance) == rows(as_filter, instance)
