"""Tests for the algorithm dispatcher and the foreign-key clause builder."""

import pytest

from repro.core import (
    ALGORITHMS,
    SmallestCounterexampleFinder,
    find_smallest_counterexample,
    foreign_key_clauses,
)
from repro.datagen import toy_beers_instance, toy_university_instance
from repro.errors import ReproError
from repro.parser import parse_query


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


class TestDispatch:
    def test_auto_uses_optsigma_for_spjud(self, instance, example1_q1, example1_q2):
        result = find_smallest_counterexample(example1_q1, example1_q2, instance)
        assert result.algorithm == "optsigma"

    def test_auto_routes_aggregates(self, instance):
        q1 = parse_query(
            "\\aggr_{group: name; count(*) -> n} \\select_{dept = 'CS'} Registration"
        )
        q2 = parse_query("\\aggr_{group: name; count(*) -> n} Registration")
        result = find_smallest_counterexample(q1, q2, instance)
        assert result.algorithm.startswith("agg")
        assert result.verified

    def test_explicit_algorithm_selection(self, instance, example1_q1, example1_q2):
        result = find_smallest_counterexample(
            example1_q1, example1_q2, instance, algorithm="basic"
        )
        assert result.algorithm == "basic"

    def test_unknown_algorithm(self, instance, example1_q1, example1_q2):
        with pytest.raises(ReproError):
            find_smallest_counterexample(
                example1_q1, example1_q2, instance, algorithm="magic"
            )

    def test_algorithm_registry_contents(self):
        assert {"basic", "optsigma", "polytime-dnf", "spjud-star", "agg-basic", "agg-opt"} <= set(
            ALGORITHMS
        )

    def test_finder_facade(self, instance, example1_q1, example1_q2):
        finder = SmallestCounterexampleFinder(instance)
        result = finder.find(example1_q1, example1_q2)
        assert result.size == 3

    def test_options_forwarded(self, instance, example1_q1, example1_q2):
        result = find_smallest_counterexample(
            example1_q1, example1_q2, instance, algorithm="basic", mode="enumerate", max_trials=2
        )
        assert result.algorithm == "basic-naive-2"


class TestForeignKeyClauses:
    def test_university_clauses(self, instance):
        clauses = foreign_key_clauses(instance, {"Registration:1", "Registration:4"})
        children = {clause.child for clause in clauses}
        assert children == {"Registration:1", "Registration:4"}
        by_child = {clause.child: clause.parents for clause in clauses}
        assert by_child["Registration:1"] == ("Student:1",)

    def test_irrelevant_tids_produce_no_clauses(self, instance):
        assert foreign_key_clauses(instance, {"Student:1"}) == []

    def test_no_foreign_keys_in_schema(self):
        from repro.datagen import university_schema
        from repro.catalog import DatabaseInstance

        schema = university_schema(with_foreign_keys=False)
        instance = DatabaseInstance(schema)
        instance.relation("Registration").insert(("Mary", "216", "CS", 100))
        assert foreign_key_clauses(instance, instance.all_tids()) == []

    def test_transitive_chain_in_beers_schema(self):
        instance = toy_beers_instance()
        # Frequents references both Drinker and Bar.
        frequents_tid = next(iter(instance.relation("Frequents").tids()))
        clauses = foreign_key_clauses(instance, {frequents_tid})
        assert len([c for c in clauses if c.child == frequents_tid]) == 2

    def test_clause_count_scales_with_relevant_set(self, instance):
        small = foreign_key_clauses(instance, {"Registration:1"})
        large = foreign_key_clauses(instance, set(instance.relation("Registration").tids()))
        assert len(large) > len(small)
