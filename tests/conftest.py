"""Shared fixtures: the paper's running example and small generated instances."""

from __future__ import annotations

import pytest

from repro.catalog import DatabaseInstance
from repro.datagen import (
    beers_instance,
    toy_beers_instance,
    toy_university_instance,
    university_instance,
)
from repro.parser import parse_query
from repro.ra import RAExpression


@pytest.fixture(scope="session")
def toy_university() -> DatabaseInstance:
    """The exact instance of Figure 1."""
    return toy_university_instance()


@pytest.fixture(scope="session")
def small_university() -> DatabaseInstance:
    """A slightly larger seeded instance (≈40 students)."""
    return university_instance(40, seed=11)


@pytest.fixture(scope="session")
def toy_beers() -> DatabaseInstance:
    return toy_beers_instance()


@pytest.fixture(scope="session")
def small_beers() -> DatabaseInstance:
    return beers_instance(num_drinkers=15, num_bars=6, num_beers=5, seed=5)


# --- The running example (Example 1) -----------------------------------------

_Q1_TEXT = """
(
  \\project_{s.name -> name, s.major -> major} (
    \\rename_{prefix: s} Student
    \\join_{s.name = r.name and r.dept = 'CS'}
    \\rename_{prefix: r} Registration
  )
) \\diff (
  \\project_{s.name -> name, s.major -> major} (
    \\rename_{prefix: s} Student
    \\join_{s.name = r1.name}
    \\rename_{prefix: r1} Registration
    \\join_{s.name = r2.name and r1.course <> r2.course and r1.dept = 'CS' and r2.dept = 'CS'}
    \\rename_{prefix: r2} Registration
  )
)
"""

_Q2_TEXT = """
\\project_{s.name -> name, s.major -> major} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name and r.dept = 'CS'}
  \\rename_{prefix: r} Registration
)
"""


@pytest.fixture(scope="session")
def example1_q1() -> RAExpression:
    """The correct query of Example 1: students with exactly one CS course."""
    return parse_query(_Q1_TEXT)


@pytest.fixture(scope="session")
def example1_q2() -> RAExpression:
    """The wrong query of Example 1: students with one or more CS courses."""
    return parse_query(_Q2_TEXT)
