"""Tests for the end-to-end RATest system, the auto-grader and report rendering."""

import pytest

from repro.datagen import toy_university_instance, university_instance
from repro.ratest import AutoGrader, Question, RATest, format_result, format_table
from repro.workload import course_questions


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


@pytest.fixture(scope="module")
def ratest(instance):
    return RATest(instance)


class TestRATestSystem:
    def test_correct_submission(self, ratest, example1_q1):
        outcome = ratest.check(example1_q1, example1_q1)
        assert outcome.correct
        assert "matches the reference" in outcome.render()

    def test_wrong_submission_gets_counterexample(self, ratest, example1_q1, example1_q2):
        outcome = ratest.check(example1_q1, example1_q2)
        assert not outcome.correct
        assert outcome.report is not None
        assert outcome.report.counterexample_size == 3

    def test_queries_can_be_dsl_strings(self, ratest):
        correct = "\\project_{name} \\select_{dept = 'ECON'} Registration"
        wrong = "\\project_{name} Registration"
        outcome = ratest.check(correct, wrong)
        assert not outcome.correct
        assert outcome.report is not None

    def test_parse_error_reported_not_raised(self, ratest, example1_q1):
        outcome = ratest.check(example1_q1, "\\select_{oops")
        assert not outcome.correct
        assert outcome.error is not None

    def test_schema_error_reported_not_raised(self, ratest, example1_q1):
        outcome = ratest.check(example1_q1, "\\project_{nonexistent} Student")
        assert not outcome.correct
        assert outcome.error is not None

    def test_queries_agree_helper(self, ratest, example1_q1, example1_q2):
        assert ratest.queries_agree(example1_q1, example1_q1)
        assert not ratest.queries_agree(example1_q1, example1_q2)

    def test_explain_report_rendering(self, ratest, example1_q1, example1_q2):
        report = ratest.explain(example1_q1, example1_q2)
        rendered = report.render()
        assert "counterexample" in rendered
        assert "Student" in rendered and "Registration" in rendered
        assert "Reference query result" in rendered
        assert report.summary().startswith("counterexample of 3 tuples")

    def test_explain_with_explicit_algorithm(self, ratest, example1_q1, example1_q2):
        report = ratest.explain(example1_q1, example1_q2, algorithm="basic")
        assert report.result.algorithm == "basic"


class TestAutoGrader:
    @pytest.fixture(scope="class")
    def grader(self):
        hidden = university_instance(35, seed=21)
        questions = {
            q.key: Question(q.key, q.prompt, q.correct_query, q.difficulty)
            for q in course_questions()
        }
        return AutoGrader(hidden, questions)

    def test_correct_submissions_pass(self, grader):
        submissions = {q.key: q.correct_query for q in course_questions()}
        report = grader.grade(submissions)
        assert report.num_passed == len(submissions)
        assert report.num_failed == 0

    def test_wrong_submission_fails_with_counterexample_size(self, grader):
        question = course_questions()[1]
        entry = grader.grade_one(
            question.key, question.handwritten_wrong_queries[0], explain=True
        )
        assert not entry.passed
        assert entry.counterexample_size is not None
        assert entry.counterexample_size <= 5

    def test_unknown_question(self, grader):
        report = grader.grade({"zzz": course_questions()[0].correct_query})
        assert report.entries[0].error == "unknown question"

    def test_crashing_submission_counts_as_wrong(self, grader):
        from repro.parser import parse_query

        bad = parse_query("\\project_{no_such_column} Student")
        entry = grader.grade_one("q1", bad)
        assert not entry.passed
        assert entry.error is not None

    def test_count_discovered_wrong_queries(self, grader):
        wrong_pool = {
            q.key: list(q.handwritten_wrong_queries) for q in course_questions()
        }
        discovered = grader.count_discovered_wrong_queries(wrong_pool)
        total = sum(len(queries) for queries in wrong_pool.values())
        assert 0 < discovered <= total


class TestFormatting:
    def test_format_table_alignment(self):
        table = format_table(("a", "long header"), [(1, "x"), (22, "yy")])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # all lines same width
        assert "long header" in table

    def test_format_empty_result(self, instance, example1_q1):
        from repro.ra import evaluate

        empty = evaluate(example1_q1, instance.subinstance(set()))
        rendered = format_result(empty)
        assert "(empty)" in rendered

    def test_format_table_empty_rows(self):
        assert "(empty)" in format_table(("a",), [])
