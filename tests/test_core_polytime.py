"""Tests for the poly-time specialised algorithms (Theorems 1–7)."""

import pytest

from repro.core import (
    smallest_witness_monotone_dnf,
    smallest_witness_optsigma,
    smallest_witness_spjud_star,
)
from repro.datagen import toy_university_instance, university_instance
from repro.errors import NotApplicableError
from repro.parser import parse_query
from repro.ra import results_differ
from repro.theory import brute_force_smallest_counterexample


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


# Monotone (SPJU) pairs: both queries monotone and distinguishable on Figure 1's
# toy instance (so no test needs to skip).
_MONOTONE_PAIRS = [
    (
        # SJ-ish: CS registrations of CS majors vs ECON registrations of CS majors.
        """
        \\project_{s.name -> name} (
          \\select_{s.major = 'CS'} \\rename_{prefix: s} Student
          \\join_{s.name = r.name and r.dept = 'CS'} \\rename_{prefix: r} Registration
        )
        """,
        """
        \\project_{s.name -> name} (
          \\select_{s.major = 'CS'} \\rename_{prefix: s} Student
          \\join_{s.name = r.name and r.dept = 'ECON'} \\rename_{prefix: r} Registration
        )
        """,
    ),
    (
        # SPU: names with a CS or ECON registration vs only ECON.
        "(\\project_{name} \\select_{dept = 'CS'} Registration) \\union "
        "(\\project_{name} \\select_{dept = 'ECON'} Registration)",
        "\\project_{name} \\select_{dept = 'ECON'} Registration",
    ),
    (
        # PJ with self join vs a plain selection+projection.
        """
        \\project_{r1.name -> name} (
          \\rename_{prefix: r1} Registration
          \\join_{r1.name = r2.name and r1.course <> r2.course}
          \\rename_{prefix: r2} Registration
        )
        """,
        "\\project_{name} \\select_{dept = 'ECON'} Registration",
    ),
]


class TestMonotoneDNF:
    @pytest.mark.parametrize("pair_index", range(len(_MONOTONE_PAIRS)))
    def test_matches_generic_solver(self, instance, pair_index):
        q1 = parse_query(_MONOTONE_PAIRS[pair_index][0])
        q2 = parse_query(_MONOTONE_PAIRS[pair_index][1])
        if not results_differ(q1, q2, instance):
            pytest.skip("queries agree on the toy instance")
        dnf_result = smallest_witness_monotone_dnf(q1, q2, instance)
        generic = smallest_witness_optsigma(q1, q2, instance)
        assert dnf_result.verified
        assert dnf_result.size == generic.size

    def test_rejects_non_monotone_queries(self, instance, example1_q1, example1_q2):
        with pytest.raises(NotApplicableError):
            smallest_witness_monotone_dnf(example1_q1, example1_q2, instance)

    def test_witness_respects_foreign_keys(self, instance):
        q1 = parse_query(_MONOTONE_PAIRS[0][0])
        q2 = parse_query(_MONOTONE_PAIRS[0][1])
        result = smallest_witness_monotone_dnf(q1, q2, instance)
        assert result.counterexample.satisfies_constraints()

    def test_matches_brute_force(self, instance):
        q1 = parse_query(_MONOTONE_PAIRS[1][0])
        q2 = parse_query(_MONOTONE_PAIRS[1][1])
        expected = brute_force_smallest_counterexample(q1, q2, instance, max_size=3)
        result = smallest_witness_monotone_dnf(q1, q2, instance)
        assert result.size == len(expected)


class TestSpjudStar:
    def test_running_example(self, instance, example1_q1, example1_q2):
        result = smallest_witness_spjud_star(example1_q1, example1_q2, instance)
        assert result.verified
        assert result.size == 3

    def test_matches_generic_solver_on_small_instance(self, example1_q1, example1_q2):
        instance = university_instance(12, seed=2)
        if not results_differ(example1_q1, example1_q2, instance):
            pytest.skip("queries agree on this instance")
        star = smallest_witness_spjud_star(example1_q1, example1_q2, instance)
        generic = smallest_witness_optsigma(example1_q1, example1_q2, instance)
        assert star.size == generic.size

    def test_monotone_pairs_also_accepted(self, instance):
        q1 = parse_query(_MONOTONE_PAIRS[1][0])
        q2 = parse_query(_MONOTONE_PAIRS[1][1])
        result = smallest_witness_spjud_star(q1, q2, instance)
        assert result.verified

    def test_rejects_nested_difference_queries(self, instance):
        nested = parse_query(
            "\\project_{name} ("
            "  ((\\project_{name} Student) \\diff (\\project_{name} Registration))"
            "  \\join (\\project_{name, major} Student)"
            ")"
        )
        other = parse_query("\\project_{name} Student")
        with pytest.raises(NotApplicableError):
            smallest_witness_spjud_star(nested, other, instance)
