"""The worker watchdog must survive its own failures, visibly.

Before this satellite, an exception inside the watchdog sweep silently
killed the thread — all future worker deaths would hang requests until the
HTTP timeout with nothing in the logs.  Now a failed sweep is logged,
counted on ``repro_server_watchdog_errors``, and the thread keeps sweeping.
"""

from __future__ import annotations

import time

import pytest

from repro.server.workers import WorkerConfig, WorkerPool


@pytest.fixture
def pool():
    pool = WorkerPool(WorkerConfig(), workers=1, mp_context="spawn")
    yield pool
    pool.close()


def test_watchdog_survives_a_raising_sweep(pool):
    original = pool._ensure_alive
    blow_ups = {"remaining": 2}

    def flaky(index: int) -> None:
        if blow_ups["remaining"] > 0:
            blow_ups["remaining"] -= 1
            raise RuntimeError("synthetic sweep failure")
        original(index)

    pool._ensure_alive = flaky
    deadline = time.monotonic() + 15.0
    while pool.watchdog_errors < 2:
        assert time.monotonic() < deadline, "watchdog never hit the failure"
        time.sleep(0.05)
    # The thread survived both failures and sweeps again.
    assert pool._watchdog.is_alive()
    time.sleep(1.0)
    assert pool._watchdog.is_alive()
    # And the pool still grades.
    reply = pool.submit(
        {"correct": "Student", "test": "Student"},
        dataset="toy-university",
        seed=0,
    ).result(timeout=60.0)
    assert reply["correct"] is True


def test_watchdog_errors_starts_at_zero(pool):
    assert pool.watchdog_errors == 0
