"""Backpressure satellites: jittered client backoff and queue-aware Retry-After."""

from __future__ import annotations

import http.client

import pytest

from repro.server import GradingClient, GradingServer, ServerConfig, compute_retry_after
from repro.server.client import MAX_HONORED_RETRY_AFTER


class TestComputeRetryAfter:
    def test_clamped_to_at_least_one_second(self):
        assert compute_retry_after(0, 4, 0.0) == 1
        assert compute_retry_after(1, 8, 0.01) == 1

    def test_scales_with_queue_depth_and_grade_time(self):
        shallow = compute_retry_after(4, 2, 1.0)
        deep = compute_retry_after(64, 2, 1.0)
        assert shallow < deep
        assert deep == 32  # 64 requests / 2 workers × 1s each

    def test_clamped_to_at_most_sixty_seconds(self):
        assert compute_retry_after(10_000, 1, 30.0) == 60

    def test_cold_estimate_uses_a_default_grade_time(self):
        # No grades observed yet (ewma 0): still a sane, nonzero answer.
        assert 1 <= compute_retry_after(32, 2, 0.0) <= 60


class TestClientJitter:
    def make(self, **kwargs) -> GradingClient:
        return GradingClient("http://127.0.0.1:1", retries=0, **kwargs)

    def test_jitter_is_deterministic_under_explicit_seed(self):
        a = self.make(jitter_seed=7)
        b = self.make(jitter_seed=7)
        delays_a = [a._retry_delay(attempt, None) for attempt in range(6)]
        delays_b = [b._retry_delay(attempt, None) for attempt in range(6)]
        assert delays_a == delays_b

    def test_distinct_clients_get_distinct_sequences(self):
        # Same endpoint, no explicit seed: the process-wide counter must
        # de-synchronise them or retry stampedes re-form in lockstep.
        a, b = self.make(), self.make()
        delays_a = [a._retry_delay(attempt, None) for attempt in range(6)]
        delays_b = [b._retry_delay(attempt, None) for attempt in range(6)]
        assert delays_a != delays_b

    def test_jitter_stays_within_half_to_full_nominal(self):
        client = self.make(jitter_seed=3)
        for attempt in range(8):
            nominal = client.backoff * (2**attempt)
            for _ in range(50):
                delay = client._retry_delay(attempt, None)
                assert 0.5 * nominal <= delay < nominal

    def test_server_retry_after_raises_the_floor(self):
        client = self.make(jitter_seed=3)
        # Attempt 0 nominal is 50ms; a server hint of 2s dominates.
        delay = client._retry_delay(0, 2.0)
        assert 1.0 <= delay < 2.0

    def test_server_retry_after_is_capped(self):
        client = self.make(jitter_seed=3)
        delay = client._retry_delay(0, 3600.0)
        assert delay < MAX_HONORED_RETRY_AFTER
        # Zero/negative hints are ignored entirely.
        nominal = client.backoff
        assert client._retry_delay(0, 0.0) < nominal
        assert client._retry_delay(0, -5.0) < nominal


@pytest.fixture(scope="module")
def overloaded_server():
    # max_queue=0: every cold grade answers 429 immediately — the pure
    # backpressure path with no slow grading required.
    server = GradingServer(ServerConfig(workers=1, max_queue=0)).start()
    yield server
    server.shutdown()


class TestRetryAfterOnTheWire:
    def test_429_carries_queue_aware_retry_after_header(self, overloaded_server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", overloaded_server.port, timeout=10.0
        )
        try:
            body = (
                b'{"correct": "Student", "test": "\\\\select_{a=1} Student", '
                b'"dataset": "toy-university"}'
            )
            conn.request(
                "POST", "/v1/grade", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 429
            retry_after = response.headers.get("Retry-After")
            assert retry_after is not None
            assert 1 <= int(retry_after) <= 60
        finally:
            conn.close()
