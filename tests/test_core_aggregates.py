"""Tests for the aggregate algorithms: Agg-Basic, Agg-Param, Agg-Opt (§5)."""

import pytest

from repro.core import (
    is_aggregate_pair,
    smallest_counterexample_agg_basic,
    smallest_counterexample_agg_opt,
)
from repro.datagen import toy_university_instance
from repro.errors import CounterexampleError
from repro.parser import parse_query
from repro.ra import evaluate

# Example 4 (average grade, no HAVING) and Example 5 (HAVING COUNT >= 3).
_Q1_AVG = """
\\aggr_{group: s.name; avg(r.grade) -> avg_grade} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name and r.dept = 'CS'}
  \\rename_{prefix: r} Registration
)
"""
_Q2_AVG = """
\\aggr_{group: s.name; avg(r.grade) -> avg_grade} (
  \\rename_{prefix: s} Student
  \\join_{s.name = r.name}
  \\rename_{prefix: r} Registration
)
"""
_Q1_HAVING = (
    "\\project_{s.name, avg_grade} \\select_{n >= 3} "
    "\\aggr_{group: s.name; avg(r.grade) -> avg_grade, count(*) -> n} ("
    "\\rename_{prefix: s} Student \\join_{s.name = r.name and r.dept = 'CS'} "
    "\\rename_{prefix: r} Registration)"
)
_Q2_HAVING = (
    "\\project_{s.name, avg_grade} \\select_{n >= 3} "
    "\\aggr_{group: s.name; avg(r.grade) -> avg_grade, count(*) -> n} ("
    "\\rename_{prefix: s} Student \\join_{s.name = r.name} "
    "\\rename_{prefix: r} Registration)"
)


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


@pytest.fixture(scope="module")
def q1_avg():
    return parse_query(_Q1_AVG)


@pytest.fixture(scope="module")
def q2_avg():
    return parse_query(_Q2_AVG)


@pytest.fixture(scope="module")
def q1_having():
    return parse_query(_Q1_HAVING)


@pytest.fixture(scope="module")
def q2_having():
    return parse_query(_Q2_HAVING)


class TestAggBasic:
    def test_example4_counterexample_is_tiny(self, instance, q1_avg, q2_avg):
        # The paper: a single tuple (Mary, 208D, ECON, 95) plus the FK parent
        # suffices: Q1 is empty while Q2 returns Mary.
        result = smallest_counterexample_agg_basic(q1_avg, q2_avg, instance)
        assert result.verified
        assert result.size <= 2
        assert result.algorithm == "agg-basic"

    def test_example4_counterexample_distinguishes(self, instance, q1_avg, q2_avg):
        result = smallest_counterexample_agg_basic(q1_avg, q2_avg, instance)
        r1 = evaluate(q1_avg, result.counterexample)
        r2 = evaluate(q2_avg, result.counterexample)
        assert not r1.same_rows(r2)

    def test_example5_having_forces_larger_counterexample(self, instance, q1_having, q2_having):
        result = smallest_counterexample_agg_basic(q1_having, q2_having, instance)
        assert result.verified
        # The HAVING COUNT >= 3 requires keeping at least three of Mary's
        # registrations (plus Mary herself): |C| >= 4, as in Example 6.
        assert result.size >= 4

    def test_example6_parameterization_shrinks_counterexample(
        self, instance, q1_having, q2_having
    ):
        fixed = smallest_counterexample_agg_basic(q1_having, q2_having, instance)
        parameterized = smallest_counterexample_agg_basic(
            q1_having, q2_having, instance, parameterize=True
        )
        assert parameterized.verified
        assert parameterized.algorithm == "agg-param"
        assert parameterized.size < fixed.size
        assert parameterized.parameter_values  # the chosen @numCS-style setting

    def test_identical_queries_raise(self, instance, q1_avg):
        with pytest.raises(CounterexampleError):
            smallest_counterexample_agg_basic(q1_avg, q1_avg, instance)

    def test_all_groups_mode(self, instance, q1_avg, q2_avg):
        single = smallest_counterexample_agg_basic(q1_avg, q2_avg, instance)
        exhaustive = smallest_counterexample_agg_basic(
            q1_avg, q2_avg, instance, all_groups=True
        )
        assert exhaustive.size <= single.size


class TestAggOpt:
    def test_example7_heuristic(self, instance, q1_avg, q2_avg):
        result = smallest_counterexample_agg_opt(q1_avg, q2_avg, instance)
        assert result.verified
        assert result.size <= 2
        assert result.algorithm in ("agg-opt", "agg-basic", "agg-param")

    def test_heuristic_on_having_queries(self, instance, q1_having, q2_having):
        result = smallest_counterexample_agg_opt(q1_having, q2_having, instance)
        assert result.verified
        # Either the heuristic re-parameterizes (small result) or it falls back.
        assert result.size >= 1

    def test_heuristic_falls_back_when_cores_agree(self, instance):
        # Same core, different HAVING threshold: the pre-aggregation queries are
        # identical, so Algorithm 3 must fall back to Agg-Basic/Agg-Param.
        q1 = parse_query(
            "\\select_{n >= 3} \\aggr_{group: name; count(*) -> n} "
            "\\select_{dept = 'CS'} Registration"
        )
        q2 = parse_query(
            "\\select_{n >= 2} \\aggr_{group: name; count(*) -> n} "
            "\\select_{dept = 'CS'} Registration"
        )
        result = smallest_counterexample_agg_opt(q1, q2, instance)
        assert result.verified
        assert result.algorithm in ("agg-basic", "agg-param")


class TestHelpers:
    def test_is_aggregate_pair(self, q1_avg, example1_q1):
        assert is_aggregate_pair(q1_avg, example1_q1)
        assert is_aggregate_pair(example1_q1, q1_avg)
        assert not is_aggregate_pair(example1_q1, example1_q1)
