"""Tests for the simulated user study and its analysis pipeline (§8)."""

import pytest

from repro.userstudy import (
    RATEST_AVAILABLE,
    headline_findings,
    score_comparison,
    simulate_cohort,
    survey_summary,
    transfer_analysis,
    usage_statistics,
)


@pytest.fixture(scope="module")
def cohort():
    return simulate_cohort(169, seed=2018)


class TestSimulation:
    def test_cohort_size_and_determinism(self, cohort):
        assert cohort.num_students == 169
        again = simulate_cohort(169, seed=2018)
        assert [r.profile.uses_ratest for r in cohort.students] == [
            r.profile.uses_ratest for r in again.students
        ]

    def test_different_seed_changes_cohort(self, cohort):
        other = simulate_cohort(169, seed=99)
        assert [r.profile.ability for r in cohort.students] != [
            r.profile.ability for r in other.students
        ]

    def test_outcomes_cover_tracked_problems(self, cohort):
        for record in cohort.students:
            assert set(record.outcomes) == set(cohort.problems)

    def test_ratest_only_used_where_available(self, cohort):
        for record in cohort.students:
            for problem, outcome in record.outcomes.items():
                if outcome.used_ratest:
                    assert problem in RATEST_AVAILABLE

    def test_scores_in_range(self, cohort):
        for record in cohort.students:
            for outcome in record.outcomes.values():
                assert 0.0 <= outcome.score <= 100.0
                if outcome.correct:
                    assert outcome.score == 100.0

    def test_majority_used_ratest(self, cohort):
        users = sum(1 for r in cohort.students if r.profile.uses_ratest)
        assert users > cohort.num_students * 0.6


class TestAnalysis:
    def test_usage_statistics_shape(self, cohort):
        rows = usage_statistics(cohort)
        assert [row["problem"] for row in rows] == list(RATEST_AVAILABLE)
        for row in rows:
            assert row["num_users_correct_eventually"] <= row["num_users"]
            assert row["avg_attempts"] >= row["avg_attempts_before_correct"] - 1e-9 or True

    def test_hard_problems_take_more_attempts(self, cohort):
        rows = {row["problem"]: row for row in usage_statistics(cohort)}
        assert rows["i"]["avg_attempts"] > rows["b"]["avg_attempts"]

    def test_score_comparison_shape(self, cohort):
        rows = score_comparison(cohort)
        assert [row["problem"] for row in rows] == list(RATEST_AVAILABLE)
        for row in rows:
            assert row["users"] + row["non_users"] == cohort.num_students

    def test_users_do_better_on_hard_problems(self, cohort):
        rows = {row["problem"]: row for row in score_comparison(cohort)}
        for problem in ("g", "i"):
            assert rows[problem]["user_mean_score"] >= rows[problem]["non_user_mean_score"]

    def test_easy_problems_near_ceiling_for_everyone(self, cohort):
        rows = {row["problem"]: row for row in score_comparison(cohort)}
        assert rows["b"]["user_mean_score"] > 95
        assert rows["b"]["non_user_mean_score"] > 90

    def test_transfer_to_similar_problem_only(self, cohort):
        rows = {row["group"]: row for row in transfer_analysis(cohort)}
        users = rows["used RATest on (i)"]
        non_users = rows["did not use RATest on (i)"]
        # Transfer: better on (h); no comparable gap on the dissimilar (j).
        gap_h = users["mean_score_h"] - non_users["mean_score_h"]
        gap_j = users["mean_score_j"] - non_users["mean_score_j"]
        assert gap_h > 0
        assert gap_h > gap_j

    def test_procrastinators_do_worse(self, cohort):
        rows = {row["group"]: row for row in transfer_analysis(cohort)}
        early = rows["first use 5-7 days before due"]
        late = rows["first use 1 day before due"]
        assert early["mean_score_i"] > late["mean_score_i"]

    def test_survey_summary(self, cohort):
        rows = survey_summary(cohort)
        helped = rows[0]
        again = rows[1]
        assert helped["strongly_agree"] + helped["agree"] > 55
        assert again["strongly_agree"] + again["agree"] > 80
        votes = rows[2]
        assert votes["i"] > votes["b"]

    def test_headline_findings(self, cohort):
        findings = headline_findings(cohort)
        assert findings["users_better_on_hard_problems"]
        assert findings["transfer_to_similar_problem"]
        assert findings["no_transfer_to_dissimilar_problem"]
        assert findings["pct_agree_counterexamples_helped"] > 55
