"""Tests for the versioned JSON result schema: exact round trips."""

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    GradingService,
    SerializationError,
    SubmissionRequest,
    instance_from_dict,
    instance_to_dict,
)
from repro.catalog.instance import DatabaseInstance
from repro.core.results import CounterexampleResult
from repro.datagen import toy_university_instance, university_instance
from repro.ratest import RATestReport, SubmissionOutcome

CORRECT = "\\project_{name} \\select_{dept = 'ECON'} Registration"
WRONG = "\\project_{name} Registration"


@pytest.fixture(scope="module")
def service():
    return GradingService.for_instance(toy_university_instance(), name="toy")


@pytest.fixture(scope="module")
def wrong_outcome(service):
    outcome = service.check(CORRECT, WRONG)
    assert outcome.report is not None
    return outcome


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


class TestOutcomeRoundTrip:
    def test_correct_outcome(self, service):
        outcome = service.check(CORRECT, CORRECT)
        payload = json_round_trip(outcome.to_dict())
        assert payload["schema_version"] == SCHEMA_VERSION
        again = SubmissionOutcome.from_dict(payload)
        assert again.to_dict() == outcome.to_dict()
        assert again.render() == outcome.render()

    def test_wrong_outcome_reproduces_everything_exactly(self, wrong_outcome):
        payload = json_round_trip(wrong_outcome.to_dict())
        again = SubmissionOutcome.from_dict(payload)
        # Dict-level: re-serializing the reconstruction is the identity.
        assert again.to_dict() == wrong_outcome.to_dict()
        # Semantic level: queries, counterexample tables, both results and
        # the full rendered report survive the process boundary.
        report, original = again.report, wrong_outcome.report
        assert report.correct_query_text == CORRECT
        assert report.test_query_text == WRONG
        assert report.result.tids == original.result.tids
        assert report.result.q1_rows.rows == original.result.q1_rows.rows
        assert report.result.q2_rows.rows == original.result.q2_rows.rows
        assert report.result.timings == original.result.timings
        assert report.result.algorithm == original.result.algorithm
        assert again.render() == wrong_outcome.render()

    def test_counterexample_tables_round_trip(self, wrong_outcome):
        original = wrong_outcome.report.result.counterexample
        rebuilt = (
            SubmissionOutcome.from_dict(json_round_trip(wrong_outcome.to_dict()))
            .report.result.counterexample
        )
        assert rebuilt.relation_names == original.relation_names
        for name in original.relation_names:
            assert list(rebuilt.relation(name).tuples()) == list(
                original.relation(name).tuples()
            )

    def test_error_outcome(self, service):
        outcome = service.check(CORRECT, "\\select_{oops")
        again = SubmissionOutcome.from_dict(json_round_trip(outcome.to_dict()))
        assert again.to_dict() == outcome.to_dict()
        assert again.error_kind == "parse_error"

    def test_include_timings_false_is_deterministic(self, service):
        first = service.check(CORRECT, WRONG).to_dict(include_timings=False)
        second = service.check(CORRECT, WRONG).to_dict(include_timings=False)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_unknown_schema_version_is_rejected(self, wrong_outcome):
        payload = wrong_outcome.to_dict()
        payload["schema_version"] = 999
        with pytest.raises(SerializationError, match="schema_version"):
            SubmissionOutcome.from_dict(payload)
        with pytest.raises(SerializationError):
            SubmissionOutcome.from_dict({"correct": True})


class TestComponentRoundTrips:
    def test_report_and_result_methods(self, wrong_outcome):
        report = wrong_outcome.report
        assert RATestReport.from_dict(report.to_dict()).to_dict() == report.to_dict()
        result = report.result
        assert (
            CounterexampleResult.from_dict(json_round_trip(result.to_dict())).to_dict()
            == result.to_dict()
        )

    def test_instance_round_trip_keeps_schema_constraints_and_tids(self):
        instance = university_instance(10, seed=3)
        payload = json_round_trip(instance_to_dict(instance))
        rebuilt = instance_from_dict(payload)
        assert rebuilt.relation_names == instance.relation_names
        assert rebuilt.total_size() == instance.total_size()
        for name in instance.relation_names:
            assert list(rebuilt.relation(name).tuples()) == list(
                instance.relation(name).tuples()
            )
            assert rebuilt.relation(name).schema == instance.relation(name).schema
        assert len(rebuilt.schema.constraints) == len(instance.schema.constraints)
        assert rebuilt.satisfies_constraints()
        assert instance_to_dict(rebuilt) == payload

    def test_database_instance_methods(self):
        instance = toy_university_instance()
        rebuilt = DatabaseInstance.from_dict(instance.to_dict())
        assert rebuilt.to_dict() == instance.to_dict()

    def test_from_dict_still_requires_row_data_with_a_schema(self):
        with pytest.raises(TypeError, match="row data"):
            DatabaseInstance.from_dict(toy_university_instance().schema)

    def test_inserting_into_a_rebuilt_instance_never_overwrites(self):
        instance = toy_university_instance()
        rebuilt = DatabaseInstance.from_dict(instance.to_dict())
        before = rebuilt.total_size()
        tid = rebuilt.insert("Student", ("Zed", "ECON"))
        assert rebuilt.total_size() == before + 1
        assert tid not in instance.relation("Student").tids()

    def test_serialization_is_canonical_across_processes(self):
        # Counterexample tids live in frozensets, whose iteration order
        # depends on string hashing; the canonical form must not.
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "import json\n"
            "from repro.api import GradingService\n"
            "svc = GradingService()\n"
            "outcome = svc.check("
            "\"\\\\project_{name} \\\\select_{dept = 'ECON'} Registration\", "
            "'\\\\project_{name} Registration')\n"
            "print(json.dumps(outcome.to_dict(include_timings=False), sort_keys=True))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed},
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for hash_seed in ("1", "7342")
        }
        assert len(outputs) == 1

    def test_parameterized_outcome_round_trip(self, service):
        outcome = service.check(
            "\\select_{dept = @d} Registration",
            "\\select_{dept = @d and grade > 90} Registration",
            params={"d": "CS"},
        )
        assert not outcome.correct
        payload = json_round_trip(outcome.to_dict())
        again = SubmissionOutcome.from_dict(payload)
        assert again.to_dict() == outcome.to_dict()
        assert dict(again.report.result.parameter_values) == dict(
            outcome.report.result.parameter_values
        )


class TestRequestFormat:
    def test_request_to_dict_is_jsonl_ready(self):
        request = SubmissionRequest(CORRECT, WRONG, dataset="university:20", id="a")
        line = json.dumps(request.to_dict())
        assert SubmissionRequest.from_dict(json.loads(line)) == request


class TestUntrustedPayloads:
    """The server deserializes wire input: junk must fail as invalid_request."""

    def test_unknown_schema_version_is_rejected(self, wrong_outcome):
        payload = wrong_outcome.to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SerializationError, match="schema_version"):
            SubmissionOutcome.from_dict(payload)

    def test_missing_schema_version_is_rejected(self, wrong_outcome):
        payload = wrong_outcome.to_dict()
        del payload["schema_version"]
        with pytest.raises(SerializationError, match="schema_version"):
            SubmissionOutcome.from_dict(payload)

    def test_every_error_is_classified_as_invalid_request(self, wrong_outcome):
        from repro.api import classify_error

        payload = wrong_outcome.to_dict()
        payload["schema_version"] = "banana"
        try:
            SubmissionOutcome.from_dict(payload)
        except Exception as exc:
            assert classify_error(exc) == "invalid_request"
        else:
            pytest.fail("junk schema_version was accepted")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("correct"),
            lambda p: p.__setitem__("report", [1, 2, 3]),
            lambda p: p["report"].pop("result"),
            lambda p: p["report"]["result"].pop("tids"),
            lambda p: p["report"]["result"].__setitem__("counterexample", "nope"),
            lambda p: p["report"]["result"]["counterexample"].pop("schema"),
            lambda p: p["report"]["result"]["counterexample"]["schema"]
            .__setitem__("relations", 7),
            lambda p: p["report"]["result"]["q1_rows"].__setitem__("rows", 3),
        ],
    )
    def test_malformed_outcome_payloads_raise_serialization_error(
        self, wrong_outcome, mutate
    ):
        payload = json_round_trip(wrong_outcome.to_dict())
        mutate(payload)
        with pytest.raises(SerializationError):
            SubmissionOutcome.from_dict(payload)

    def test_junk_attribute_dtype_is_invalid_request(self):
        payload = {
            "name": "R",
            "attributes": [{"name": "a", "dtype": "no-such-type"}],
        }
        from repro.api.serialization import relation_schema_from_dict

        with pytest.raises(SerializationError):
            relation_schema_from_dict(payload)

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(SerializationError, match="JSON object"):
            SubmissionOutcome.from_dict([1, 2])

    @pytest.mark.parametrize(
        "payload",
        [
            "not even a dict",
            {"correct_query": "Student"},  # missing test_query
            {"correct": "Student", "test": "Student", "seed": "7"},
            {"correct": "Student", "test": "Student", "seed": True},
            {"correct": "Student", "test": "Student", "options": "x"},
            {"correct": "Student", "test": "Student", "dataset": 9},
            {"correct": ["Student"], "test": "Student"},
        ],
    )
    def test_malformed_requests_are_invalid(self, payload):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            SubmissionRequest.from_dict(payload)

    def test_graded_submission_checks_version(self, service):
        from repro.api import GradedSubmission

        graded = service.submit({"correct": CORRECT, "test": WRONG})
        payload = graded.to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SerializationError):
            GradedSubmission.from_dict(payload)
