"""Placement properties of the consistent-hash ring.

Three properties carry the cluster's correctness story and are pinned here:

* **stability** — removing (or adding) one peer of N remaps only ≈ K/N of K
  keys, so membership churn never invalidates the whole cluster's warm state;
* **determinism** — placement is identical in every process regardless of
  ``PYTHONHASHSEED``, because ring points come from SHA-256, never ``hash()``;
* **total ownership** — every key has exactly one owner at every membership
  state, including mid-failover (peers removed one by one).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster.membership import ClusterMembership
from repro.cluster.ring import HashRing, placement_key

PEERS = [f"shard-{index}" for index in range(4)]
KEYS = [placement_key(f"university:{40 + index % 7}", index) for index in range(600)]


def owners(ring: HashRing) -> dict[str, str]:
    return {key: ring.owner(key) for key in KEYS}


def test_every_key_has_exactly_one_owner() -> None:
    ring = HashRing(PEERS)
    for key in KEYS:
        owner = ring.owner(key)
        assert owner in PEERS
        # preference starts at the owner and covers each peer exactly once
        preference = ring.preference(key)
        assert preference[0] == owner
        assert sorted(preference) == sorted(PEERS)


def test_empty_ring_owns_nothing() -> None:
    ring = HashRing()
    assert ring.owner("anything") is None
    assert ring.preference("anything") == []


def test_remove_one_peer_remaps_only_its_slice() -> None:
    ring = HashRing(PEERS)
    before = owners(ring)
    ring.remove("shard-2")
    after = owners(ring)
    moved = [key for key in KEYS if before[key] != after[key]]
    # Every moved key must have belonged to the removed peer — nobody else's
    # placement may change (the defining property of consistent hashing).
    assert all(before[key] == "shard-2" for key in moved)
    assert all(after[key] != "shard-2" for key in KEYS)
    # The removed slice is ≈ K/N; allow generous slack for hash variance.
    expected = len(KEYS) / len(PEERS)
    assert len(moved) <= 2.0 * expected


def test_add_one_peer_steals_only_its_slice() -> None:
    ring = HashRing(PEERS)
    before = owners(ring)
    ring.add("shard-4")
    after = owners(ring)
    moved = [key for key in KEYS if before[key] != after[key]]
    assert all(after[key] == "shard-4" for key in moved)
    expected = len(KEYS) / (len(PEERS) + 1)
    assert 0 < len(moved) <= 2.0 * expected


def test_slices_are_roughly_balanced() -> None:
    ring = HashRing(PEERS, virtual_nodes=64)
    counts = {peer: 0 for peer in PEERS}
    for key in KEYS:
        counts[ring.owner(key)] += 1
    expected = len(KEYS) / len(PEERS)
    for peer, count in counts.items():
        assert 0.4 * expected <= count <= 1.9 * expected, (peer, counts)


def test_placement_is_insertion_order_independent() -> None:
    forward = HashRing(PEERS)
    backward = HashRing(reversed(PEERS))
    assert owners(forward) == owners(backward)


def test_placement_is_identical_across_processes_and_hash_seeds(tmp_path: Path) -> None:
    """The property the whole cluster rests on: every process computes the
    same ring, even under different PYTHONHASHSEED values."""
    script = (
        "import json, sys\n"
        "from repro.cluster.ring import HashRing\n"
        f"ring = HashRing({PEERS!r})\n"
        f"print(json.dumps({{key: ring.owner(key) for key in {KEYS[:100]!r}}}))\n"
    )
    placements = []
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    for hash_seed in ("0", "1", "12345"):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src_root, "PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
            check=True,
        )
        placements.append(json.loads(result.stdout))
    assert placements[0] == placements[1] == placements[2]
    local = HashRing(PEERS)
    assert placements[0] == {key: local.owner(key) for key in KEYS[:100]}


def test_live_ring_always_has_an_owner_through_failover() -> None:
    """Kill peers one at a time: every key keeps exactly one live owner, and
    keys owned by survivors never move."""
    peers = {name: f"http://127.0.0.1:{9000 + index}" for index, name in enumerate(PEERS)}
    membership = ClusterMembership(
        "shard-0", peers, suspect_after=1, down_after=1, probe=lambda url: None
    )
    alive = set(PEERS)
    previous = {key: membership.owner(*_split(key)) for key in KEYS}
    for victim in ("shard-3", "shard-1", "shard-2"):
        for _ in range(membership.down_after):
            membership.report_failure(victim)
        alive.discard(victim)
        current = {}
        for key in KEYS:
            owner = membership.owner(*_split(key))
            assert owner in alive, (key, owner, alive)
            current[key] = owner
        moved = [key for key in KEYS if previous[key] != current[key]]
        assert all(previous[key] not in alive for key in moved)
        previous = current
    # Only shard-0 (self) remains; it owns everything.
    assert set(previous.values()) == {"shard-0"}


def _split(key: str) -> tuple[str, int]:
    dataset, _, seed = key.rpartition("#")
    return dataset, int(seed)


def test_virtual_nodes_validation() -> None:
    with pytest.raises(ValueError):
        HashRing(virtual_nodes=0)
    with pytest.raises(ValueError):
        HashRing().add("")
