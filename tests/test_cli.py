"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, load_dataset, main
from repro.errors import ReproError


class TestDatasetLoading:
    def test_toy_datasets(self):
        assert load_dataset("toy-university").total_size() == 11
        assert load_dataset("toy-beers").total_size() > 0

    def test_parameterised_datasets(self):
        small = load_dataset("university:20", seed=1)
        large = load_dataset("university:60", seed=1)
        assert large.total_size() > small.total_size()
        assert load_dataset("tpch:0.05", seed=1).total_size() > 0

    def test_unknown_dataset(self):
        with pytest.raises(ReproError):
            load_dataset("mysterious")


class TestCommands:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "counterexample" in output

    def test_explain_wrong_query(self, capsys):
        exit_code = main(
            [
                "explain",
                "--dataset",
                "toy-university",
                "--correct",
                "\\project_{name} \\select_{dept = 'ECON'} Registration",
                "--test",
                "\\project_{name} Registration",
            ]
        )
        assert exit_code == 1
        assert "counterexample" in capsys.readouterr().out

    def test_explain_correct_query(self, capsys):
        query = "\\project_{name} Student"
        assert main(["explain", "--correct", query, "--test", query]) == 0
        assert "matches the reference" in capsys.readouterr().out

    def test_explain_reads_query_files(self, tmp_path, capsys):
        correct = tmp_path / "correct.ra"
        correct.write_text("\\project_{name} \\select_{dept = 'ECON'} Registration")
        test = tmp_path / "test.ra"
        test.write_text("\\project_{name} Registration")
        exit_code = main(["explain", "--correct", str(correct), "--test", str(test)])
        assert exit_code == 1

    def test_explain_unparsable_query(self, capsys):
        exit_code = main(["explain", "--correct", "\\select_{", "--test", "Student"])
        assert exit_code == 2

    def test_unknown_dataset_is_reported(self, capsys):
        exit_code = main(
            ["explain", "--dataset", "nope", "--correct", "Student", "--test", "Student"]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_json_output(self, capsys):
        exit_code = main(
            [
                "explain",
                "--json",
                "--correct",
                "\\project_{name} \\select_{dept = 'ECON'} Registration",
                "--test",
                "\\project_{name} Registration",
            ]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["correct"] is False
        assert payload["report"]["result"]["algorithm"]


SUBMISSIONS = [
    {
        "id": "a/q1",
        "correct": "\\project_{name} \\select_{dept = 'ECON'} Registration",
        "test": "\\project_{name} \\select_{dept = 'ECON'} Registration",
    },
    {
        "id": "b/q1",
        "correct": "\\project_{name} \\select_{dept = 'ECON'} Registration",
        "test": "\\project_{name} Registration",
    },
    {
        "id": "c/q1",
        "correct": "\\project_{name} \\select_{dept = 'ECON'} Registration",
        "test": "\\select_{oops",
    },
]


class TestBatchCommand:
    def write_submissions(self, tmp_path, rows=SUBMISSIONS):
        path = tmp_path / "submissions.jsonl"
        path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
        return path

    def read_grades(self, path):
        return [json.loads(line) for line in path.read_text().splitlines()]

    def test_batch_grades_jsonl(self, tmp_path, capsys):
        submissions = self.write_submissions(tmp_path)
        output = tmp_path / "grades.jsonl"
        exit_code = main(
            ["batch", "--input", str(submissions), "--output", str(output), "--workers", "2"]
        )
        assert exit_code == 0
        grades = self.read_grades(output)
        assert [g["id"] for g in grades] == ["a/q1", "b/q1", "c/q1"]
        assert [g["correct"] for g in grades] == [True, False, False]
        assert grades[2]["outcome"]["error_kind"] == "parse_error"
        assert all(g["schema_version"] == 1 for g in grades)
        summary = capsys.readouterr().err
        assert "graded 3 submissions" in summary

    def test_batch_stdout_and_dataset_flag(self, tmp_path, capsys):
        submissions = self.write_submissions(tmp_path, SUBMISSIONS[:1])
        exit_code = main(
            ["batch", "--input", str(submissions), "--dataset", "university:20"]
        )
        assert exit_code == 0
        line = capsys.readouterr().out.strip()
        payload = json.loads(line)
        assert payload["dataset"] == "university:20"

    def test_batch_backend_flag_grades_identically(self, tmp_path, capsys):
        submissions = self.write_submissions(tmp_path)
        python_output = tmp_path / "python.jsonl"
        sqlite_output = tmp_path / "sqlite.jsonl"
        assert main(["batch", "--input", str(submissions), "--output", str(python_output)]) == 0
        assert (
            main(
                [
                    "batch",
                    "--input",
                    str(submissions),
                    "--output",
                    str(sqlite_output),
                    "--backend",
                    "sqlite",
                ]
            )
            == 0
        )

        def stable(path):
            from repro.api import GradedSubmission

            return [
                GradedSubmission.from_dict(grade).to_dict(include_timings=False)
                for grade in self.read_grades(path)
            ]

        assert stable(sqlite_output) == stable(python_output)

    def test_explain_backend_flag(self, capsys):
        exit_code = main(
            [
                "explain",
                "--backend",
                "sqlite",
                "--correct",
                "\\project_{name} \\select_{dept = 'ECON'} Registration",
                "--test",
                "\\project_{name} Registration",
            ]
        )
        assert exit_code == 1  # wrong submission, counterexample found
        assert "counterexample" in capsys.readouterr().out.lower()

    def test_batch_rejects_bad_json(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert main(["batch", "--input", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_batch_missing_input_file_is_reported(self, tmp_path, capsys):
        assert main(["batch", "--input", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_unwritable_output_is_reported(self, tmp_path, capsys):
        submissions = self.write_submissions(tmp_path, SUBMISSIONS[:1])
        output = tmp_path / "no" / "such" / "dir" / "grades.jsonl"
        assert main(["batch", "--input", str(submissions), "--output", str(output)]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_batch_operational_failures_exit_nonzero(self, tmp_path, capsys):
        rows = [dict(SUBMISSIONS[0], dataset="no-such-dataset")]
        submissions = self.write_submissions(tmp_path, rows)
        exit_code = main(["batch", "--input", str(submissions)])
        assert exit_code == 1
        grade = json.loads(capsys.readouterr().out.strip())
        assert grade["outcome"]["error_kind"] == "invalid_request"

    def test_batch_fixture_file_matches_ci_expectations(self, capsys):
        from pathlib import Path

        fixture = Path(__file__).resolve().parent.parent / "examples" / "submissions.jsonl"
        exit_code = main(["batch", "--input", str(fixture)])
        assert exit_code == 0
        grades = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [g["correct"] for g in grades] == [True, False, False]


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_setup_py_reads_the_same_version(self):
        import re
        from pathlib import Path

        import repro

        setup_text = Path(__file__).parent.parent.joinpath("setup.py").read_text()
        assert "__init__.py" in setup_text  # setup.py parses the package file
        package_text = Path(repro.__file__).read_text()
        match = re.search(r'^__version__ = "([^"]+)"$', package_text, re.MULTILINE)
        assert match is not None
        assert match.group(1) == repro.__version__


class TestServeAndClientMode:
    def test_batch_against_a_live_server(self, tmp_path, capsys):
        """CLI client mode: the batch subcommand grading through a daemon."""
        from repro.server import GradingServer, ServerConfig

        submissions = tmp_path / "subs.jsonl"
        submissions.write_text(
            "\n".join(json.dumps(row) for row in SUBMISSIONS) + "\n"
        )
        grades = tmp_path / "grades.jsonl"
        server = GradingServer(
            ServerConfig(workers=1, store_path=tmp_path / "store.sqlite3")
        ).start()
        try:
            url = f"http://127.0.0.1:{server.port}"
            assert main(
                ["batch", "--server", url, "--input", str(submissions), "--output", str(grades)]
            ) == 0
            first = [json.loads(line) for line in grades.read_text().splitlines()]
            assert [g["correct"] for g in first] == [True, False, False]
            assert all(g["store"] == "miss" for g in first)
            assert "served from the result store" in capsys.readouterr().err

            assert main(
                ["batch", "--server", url, "--input", str(submissions), "--output", str(grades)]
            ) == 0
            second = [json.loads(line) for line in grades.read_text().splitlines()]
            assert all(g["store"] == "hit" for g in second)
            assert [g["outcome"] for g in first] == [g["outcome"] for g in second]
        finally:
            server.shutdown()

    def test_batch_server_unreachable_is_reported(self, tmp_path, capsys):
        submissions = tmp_path / "subs.jsonl"
        submissions.write_text(json.dumps(SUBMISSIONS[0]) + "\n")
        assert (
            main(["batch", "--server", "http://127.0.0.1:9", "--input", str(submissions)])
            == 2
        )
        assert "error:" in capsys.readouterr().err
