"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_dataset, main
from repro.errors import ReproError


class TestDatasetLoading:
    def test_toy_datasets(self):
        assert load_dataset("toy-university").total_size() == 11
        assert load_dataset("toy-beers").total_size() > 0

    def test_parameterised_datasets(self):
        small = load_dataset("university:20", seed=1)
        large = load_dataset("university:60", seed=1)
        assert large.total_size() > small.total_size()
        assert load_dataset("tpch:0.05", seed=1).total_size() > 0

    def test_unknown_dataset(self):
        with pytest.raises(ReproError):
            load_dataset("mysterious")


class TestCommands:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "counterexample" in output

    def test_explain_wrong_query(self, capsys):
        exit_code = main(
            [
                "explain",
                "--dataset",
                "toy-university",
                "--correct",
                "\\project_{name} \\select_{dept = 'ECON'} Registration",
                "--test",
                "\\project_{name} Registration",
            ]
        )
        assert exit_code == 1
        assert "counterexample" in capsys.readouterr().out

    def test_explain_correct_query(self, capsys):
        query = "\\project_{name} Student"
        assert main(["explain", "--correct", query, "--test", query]) == 0
        assert "matches the reference" in capsys.readouterr().out

    def test_explain_reads_query_files(self, tmp_path, capsys):
        correct = tmp_path / "correct.ra"
        correct.write_text("\\project_{name} \\select_{dept = 'ECON'} Registration")
        test = tmp_path / "test.ra"
        test.write_text("\\project_{name} Registration")
        exit_code = main(["explain", "--correct", str(correct), "--test", str(test)])
        assert exit_code == 1

    def test_explain_unparsable_query(self, capsys):
        exit_code = main(["explain", "--correct", "\\select_{", "--test", "Student"])
        assert exit_code == 2

    def test_unknown_dataset_is_reported(self, capsys):
        exit_code = main(
            ["explain", "--dataset", "nope", "--correct", "Student", "--test", "Student"]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err
