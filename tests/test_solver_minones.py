"""Tests for the min-ones optimizer (Opt) and model enumeration (Naive-M)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError, UnsatisfiableError
from repro.provenance import band, bnot, bor, var
from repro.solver.minones import ForeignKeyClause, MinOnesProblem, MinOnesSolver, solve_min_ones


def brute_force_min_ones(expression, extra_check=None):
    """Minimum number of true variables satisfying the expression (brute force)."""
    names = sorted(expression.variables())
    best = None
    for size in range(len(names) + 1):
        for subset in itertools.combinations(names, size):
            assignment = {name: True for name in subset}
            if expression.evaluate(assignment) and (extra_check is None or extra_check(set(subset))):
                return size
    return best


class TestMinimize:
    def test_example3_from_the_paper(self):
        # Prv(Jesse, CS) w.r.t. Q2 − Q1: keep Jesse plus two of his three courses.
        t3, t9, t10, t11 = var("t3"), var("t9"), var("t10"), var("t11")
        expression = band(
            band(t3, bor(t9, t10, t11)),
            bnot(
                band(
                    band(t3, bor(t9, t10, t11)),
                    bnot(bor(band(t3, t9, t10), band(t3, t9, t11), band(t3, t10, t11))),
                )
            ),
        )
        result = solve_min_ones([expression])
        assert result.cost == 3
        assert result.optimal
        assert "t3" in result.true_variables

    def test_single_variable(self):
        result = solve_min_ones([var("a")])
        assert result.true_variables == frozenset({"a"})
        assert result.cost == 1 and result.optimal

    def test_pure_negation_costs_zero(self):
        result = solve_min_ones([bnot(var("a"))])
        assert result.cost == 0

    def test_unsatisfiable(self):
        with pytest.raises(UnsatisfiableError):
            solve_min_ones([band(var("a"), bnot(var("a")))])

    def test_requires_a_constraint(self):
        with pytest.raises(SolverError):
            MinOnesSolver(MinOnesProblem())

    def test_binary_strategy_matches_descend(self):
        expression = bor(
            band(var("a"), var("b"), var("c")),
            band(var("d"), var("e")),
            band(var("f"), var("g"), var("h"), var("i")),
        )
        descend = solve_min_ones([expression], strategy="descend")
        binary = solve_min_ones([expression], strategy="binary")
        assert descend.cost == binary.cost == 2

    def test_multiple_constraints(self):
        result = solve_min_ones([bor(var("a"), var("b")), bor(var("b"), var("c"))])
        assert result.cost == 1
        assert result.true_variables == frozenset({"b"})

    def test_cost_counts_only_cost_variables(self):
        problem = MinOnesProblem()
        problem.add_constraint(bor(var("a"), var("b")))
        problem.cost_variables = {"a"}
        result = MinOnesSolver(problem).minimize()
        # Satisfy via b (not a cost variable) for cost 0.
        assert result.cost == 0

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_optimality_against_brute_force(self, data):
        names = [f"v{i}" for i in range(5)]
        leaf = st.sampled_from([var(n) for n in names])
        expr_strategy = st.recursive(
            leaf,
            lambda children: st.one_of(
                st.builds(lambda xs: band(*xs), st.lists(children, min_size=1, max_size=3)),
                st.builds(lambda xs: bor(*xs), st.lists(children, min_size=1, max_size=3)),
                st.builds(bnot, children),
            ),
            max_leaves=10,
        )
        expression = data.draw(expr_strategy)
        expected = brute_force_min_ones(expression)
        if expected is None:
            with pytest.raises(UnsatisfiableError):
                solve_min_ones([expression])
        else:
            result = solve_min_ones([expression])
            assert result.optimal
            assert result.cost == expected
            assert expression.evaluate({name: True for name in result.true_variables})


class TestForeignKeys:
    def test_foreign_key_forces_parent(self):
        # Keeping the child requires keeping one of its parents.
        result = solve_min_ones(
            [var("child")],
            foreign_keys=[ForeignKeyClause("child", ("parent1", "parent2"))],
        )
        assert result.cost == 2
        assert "child" in result.true_variables
        assert result.true_variables & {"parent1", "parent2"}

    def test_foreign_key_chain(self):
        result = solve_min_ones(
            [var("grandchild")],
            foreign_keys=[
                ForeignKeyClause("grandchild", ("child",)),
                ForeignKeyClause("child", ("parent",)),
            ],
        )
        assert result.true_variables == frozenset({"grandchild", "child", "parent"})

    def test_childless_parent_unaffected(self):
        result = solve_min_ones(
            [bor(var("a"), var("b"))],
            foreign_keys=[ForeignKeyClause("a", ())],
        )
        # "a" has no possible parent so it can never be kept; "b" is chosen.
        assert result.true_variables == frozenset({"b"})

    def test_brute_force_with_fk(self):
        expression = bor(band(var("c1"), var("c2")), var("c3"))
        fks = [ForeignKeyClause("c3", ("p1",)), ForeignKeyClause("c1", ("p1",))]

        def respects(subset):
            for fk in fks:
                if fk.child in subset and not (set(fk.parents) & subset):
                    return False
            return True

        expected = brute_force_min_ones(
            band(expression, bor(var("p1"), bnot(var("p1")))), extra_check=respects
        )
        result = solve_min_ones([expression], foreign_keys=fks)
        assert result.cost == expected


class TestEnumeration:
    def test_enumeration_finds_all_witnesses(self):
        expression = band(var("t1"), bor(var("t4"), var("t5")))
        solver = MinOnesSolver(_problem(expression), default_phase=True)
        outcome = solver.enumerate_models(50)
        assert outcome.exhausted
        assert outcome.best is not None
        assert len(outcome.best) == 2
        assert len(outcome.models) >= 3  # {t1,t4}, {t1,t5}, {t1,t4,t5}

    def test_enumeration_respects_budget(self):
        expression = bor(*[var(f"x{i}") for i in range(6)])
        outcome = MinOnesSolver(_problem(expression)).enumerate_models(3)
        assert len(outcome.models) == 3
        assert not outcome.exhausted

    def test_enumeration_unsat(self):
        with pytest.raises(UnsatisfiableError):
            MinOnesSolver(_problem(band(var("a"), bnot(var("a"))))).enumerate_models(5)

    def test_enumeration_budget_validation(self):
        with pytest.raises(SolverError):
            MinOnesSolver(_problem(var("a"))).enumerate_models(0)

    def test_opt_never_larger_than_naive(self):
        expression = bor(
            band(var("a"), var("b"), var("c")),
            band(var("d"), var("e")),
        )
        naive = MinOnesSolver(_problem(expression), default_phase=True).enumerate_models(1)
        opt = MinOnesSolver(_problem(expression)).minimize()
        assert opt.cost <= len(naive.best)


def _problem(expression) -> MinOnesProblem:
    problem = MinOnesProblem()
    problem.add_constraint(expression)
    return problem


class TestTimeBudget:
    """The wall-clock budget must bound *single* SAT calls, not just the gaps.

    The deadline is threaded into :class:`repro.solver.sat.SATSolver`; a call
    that outlives it aborts with :class:`BudgetExceededError`, and the
    min-ones layer turns a mid-descent abort into "best model so far,
    ``optimal=False``" instead of overrunning or raising.
    """

    def _expression(self):
        return bor(
            band(var("a"), var("b"), var("c")),
            band(var("d"), var("e")),
            band(var("f"), var("g"), var("h"), var("i")),
        )

    def test_sat_solver_aborts_on_expired_deadline(self):
        from repro.solver.sat import SATSolver
        from repro.errors import BudgetExceededError

        solver = SATSolver(deadline=-1.0)  # perf_counter() is always positive
        solver.add_clauses([(1, 2), (-1, 2), (1, -2)])
        with pytest.raises(BudgetExceededError):
            solver.solve()

    def test_deadline_is_threaded_into_the_sat_engine(self, monkeypatch):
        import repro.solver.minones as minones_module

        seen: list = []

        class Spy(minones_module.SATSolver):
            def solve(self):
                seen.append(self.deadline)
                return super().solve()

        monkeypatch.setattr(minones_module, "SATSolver", Spy)
        MinOnesSolver(_problem(self._expression())).minimize(time_budget=30.0)
        assert seen and all(deadline is not None for deadline in seen)

    def test_descend_returns_best_so_far_on_mid_solve_timeout(self, monkeypatch):
        import repro.solver.minones as minones_module
        from repro.errors import BudgetExceededError

        calls = {"n": 0}

        class FlakyAfterFirst(minones_module.SATSolver):
            def solve(self):
                calls["n"] += 1
                if calls["n"] > 1:
                    raise BudgetExceededError("SAT solve exceeded its time budget")
                return super().solve()

        monkeypatch.setattr(minones_module, "SATSolver", FlakyAfterFirst)
        outcome = MinOnesSolver(_problem(self._expression())).minimize(time_budget=30.0)
        assert not outcome.optimal
        assert outcome.true_variables  # the first model survives as best-so-far
        assert self._expression().evaluate({name: True for name in outcome.true_variables})

    def test_binary_strategy_survives_mid_probe_timeout(self, monkeypatch):
        import repro.solver.minones as minones_module
        from repro.errors import BudgetExceededError

        calls = {"n": 0}

        class FlakyAfterFirst(minones_module.SATSolver):
            def solve(self):
                calls["n"] += 1
                if calls["n"] > 1:
                    raise BudgetExceededError("SAT solve exceeded its time budget")
                return super().solve()

        monkeypatch.setattr(minones_module, "SATSolver", FlakyAfterFirst)
        outcome = MinOnesSolver(_problem(self._expression())).minimize(
            strategy="binary", time_budget=30.0
        )
        assert not outcome.optimal
        assert outcome.true_variables

    def test_enumeration_returns_partial_models_on_timeout(self, monkeypatch):
        import repro.solver.minones as minones_module
        from repro.errors import BudgetExceededError

        calls = {"n": 0}

        class FlakyAfterSecond(minones_module.SATSolver):
            def solve(self):
                calls["n"] += 1
                if calls["n"] > 2:
                    raise BudgetExceededError("SAT solve exceeded its time budget")
                return super().solve()

        monkeypatch.setattr(minones_module, "SATSolver", FlakyAfterSecond)
        outcome = MinOnesSolver(_problem(self._expression())).enumerate_models(
            10, time_budget=30.0
        )
        assert len(outcome.models) == 2
        assert not outcome.exhausted

    def test_generous_budget_still_proves_optimality(self):
        outcome = MinOnesSolver(_problem(self._expression())).minimize(time_budget=60.0)
        assert outcome.optimal
        assert outcome.cost == 2
