"""The SQLite backend: semantics units plus workload SQL round trips.

Two layers of guarantees:

* every course/beers/TPC-H workload query — correct references *and* wrong
  variants — (a) evaluates identically on the Python and SQLite backends
  through ``EngineSession``, and (b) has ``to_sql`` output that executes
  verbatim on a loaded SQLite database and returns the same rows;
* targeted unit tests for the dialect corners where SQL and the engine
  disagree by default: two-valued NULL logic under ``NOT``, null-safe join
  keys, Python division, BOOL round trips, quoting of reserved/dotted
  identifiers, parameter binding, empty-input aggregates, data-version
  reloads, and the fallback protocol for inexpressible plans.
"""

from __future__ import annotations

import pytest

from repro.catalog.instance import DatabaseInstance
from repro.catalog.schema import Attribute, DatabaseSchema, RelationSchema
from repro.catalog.types import DataType
from repro.engine.backends.sqlite import (
    BackendUnsupportedError,
    SqliteBackend,
    compile_plan_to_sql,
    connect_instance,
)
from repro.engine.logical import compile_plan
from repro.engine.session import EngineSession
from repro.errors import QueryEvaluationError
from repro.datagen import (
    tpch_instance,
    toy_beers_instance,
    toy_university_instance,
)
from repro.parser import parse_query, to_sql
from repro.ra.ast import RelationRef, Selection
from repro.ra.predicates import (
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Param,
    Predicate,
)
from repro.workload import beers_problems, course_questions, tpch_queries


def _workloads():
    university = toy_university_instance()
    beers = toy_beers_instance()
    tpch = tpch_instance(0.01, seed=3)
    cases = []
    for question in course_questions():
        for text in (question.correct_text, *question.wrong_texts):
            cases.append(("course", university, text))
    for problem in beers_problems():
        for text in (problem.correct_text, *problem.wrong_texts):
            cases.append(("beers", beers, text))
    for query in tpch_queries():
        for text in (query.correct_text, *query.wrong_texts):
            cases.append(("tpch", tpch, text))
    return cases


_WORKLOADS = _workloads()


class TestWorkloadRoundTrips:
    """Acceptance: every workload query's SQL executes on SQLite."""

    @pytest.fixture(scope="class")
    def connections(self):
        cache = {}

        def connection_for(instance):
            key = id(instance)
            if key not in cache:
                cache[key] = connect_instance(instance)
            return cache[key]

        yield connection_for
        for conn in cache.values():
            conn.close()

    @pytest.fixture(scope="class")
    def sessions(self):
        cache = {}

        def session_for(instance, backend):
            key = (id(instance), backend)
            if key not in cache:
                cache[key] = EngineSession(instance, backend=backend)
            return cache[key]

        return session_for

    @pytest.mark.parametrize(
        "workload,instance,text",
        _WORKLOADS,
        ids=[f"{w}-{i}" for i, (w, _, _) in enumerate(_WORKLOADS)],
    )
    def test_sql_text_executes_and_matches_engine(
        self, workload, instance, text, connections, sessions
    ):
        expression = parse_query(text)
        sql = to_sql(expression, instance.schema)
        fetched = frozenset(
            tuple(row) for row in connections(instance).execute(sql).fetchall()
        )
        expected = sessions(instance, "python").evaluate(expression).rows
        assert fetched == expected

    @pytest.mark.parametrize(
        "workload,instance,text",
        _WORKLOADS,
        ids=[f"{w}-{i}" for i, (w, _, _) in enumerate(_WORKLOADS)],
    )
    def test_sqlite_backend_matches_python_backend(
        self, workload, instance, text, sessions
    ):
        expression = parse_query(text)
        expected = sessions(instance, "python").evaluate(expression)
        actual = sessions(instance, "sqlite").evaluate(expression)
        assert actual.rows == expected.rows


class TestNullSemantics:
    @pytest.fixture(scope="class")
    def instance(self):
        schema = DatabaseSchema.of(
            [
                RelationSchema.of(
                    "T",
                    [
                        Attribute("k", DataType.INT, nullable=True),
                        Attribute("v", DataType.STRING),
                    ],
                ),
                RelationSchema.of(
                    "U",
                    [
                        Attribute("k", DataType.INT, nullable=True),
                        Attribute("w", DataType.STRING),
                    ],
                ),
            ]
        )
        instance = DatabaseInstance(schema)
        instance.relation("T").insert_all([(1, "a"), (None, "b"), (2, "c")])
        instance.relation("U").insert_all([(None, "x"), (2, "y")])
        return instance

    def test_not_over_null_comparison_is_true(self, instance):
        # Engine logic: k = 1 is False when k IS NULL, so NOT(k = 1) keeps
        # the row.  Plain SQL three-valued logic would drop it.
        query = parse_query("\\select_{not (k = 1)} T")
        python = EngineSession(instance).evaluate(query)
        sqlite = EngineSession(instance, backend="sqlite").evaluate(query)
        assert python.rows == sqlite.rows
        assert (None, "b") in python.rows

    def test_null_join_keys_match_like_dict_keys(self, instance):
        # The hash join's dict lookup matches NULL with NULL; the compiled
        # SQL must use IS, not =, for hoisted key conjuncts.
        query = parse_query(
            "(\\rename_{prefix: a} T) \\join_{a.k = b.k} (\\rename_{prefix: b} U)"
        )
        python = EngineSession(instance).evaluate(query)
        sqlite = EngineSession(instance, backend="sqlite").evaluate(query)
        assert python.rows == sqlite.rows
        assert any(row[0] is None for row in python.rows)


class TestDialectCorners:
    def test_division_matches_python_semantics(self):
        instance = toy_university_instance()
        predicate = Comparison(
            ">",
            Arithmetic("/", ColumnRef("grade"), Literal(2)),
            Literal(44.0),
        )
        query = Selection(RelationRef("Registration"), predicate)
        python = EngineSession(instance).evaluate(query)
        sqlite = EngineSession(instance, backend="sqlite").evaluate(query)
        assert python.rows == sqlite.rows

    def test_division_by_zero_raises_on_both_backends(self):
        instance = toy_university_instance()
        predicate = Comparison(
            ">", Arithmetic("/", ColumnRef("grade"), Literal(0)), Literal(1)
        )
        query = Selection(RelationRef("Registration"), predicate)
        with pytest.raises(QueryEvaluationError):
            EngineSession(instance).evaluate(query)
        with pytest.raises(QueryEvaluationError):
            EngineSession(instance, backend="sqlite").evaluate(query)

    def test_cross_type_ordering_comparison_fails_identically(self):
        # SQLite would order 'Mary' < 5 by storage class; the Python
        # operators raise TypeError.  The backend must fall back so both
        # backends produce the same (internal) error — grades stay
        # backend-independent even for type-broken submissions.
        instance = toy_university_instance()
        query = parse_query("\\select_{name < 5} Student")
        with pytest.raises(TypeError):
            EngineSession(instance).evaluate(query)
        session = EngineSession(instance, backend="sqlite")
        with pytest.raises(TypeError):
            session.evaluate(query)
        assert session.stats["sqlite_fallbacks"] == 1

    def test_cross_type_equality_falls_back_consistently(self):
        # name = 5 is simply false everywhere in Python; SQLite's comparison
        # affinity could coerce and match — so it must not run on SQLite.
        instance = toy_university_instance()
        query = parse_query("\\select_{name = 5} Student")
        python = EngineSession(instance).evaluate(query)
        session = EngineSession(instance, backend="sqlite")
        assert session.evaluate(query).rows == python.rows == frozenset()
        assert session.stats["sqlite_fallbacks"] == 1

    def test_cross_type_grading_is_backend_independent(self):
        from repro.api import GradingService

        instance = toy_university_instance()
        correct = "\\project_{name} Student"
        broken = "\\select_{name < 5} \\project_{name} Student"
        python = GradingService.for_instance(instance, name="h").check(correct, broken)
        sqlite = GradingService.for_instance(
            instance, name="h", backend="sqlite"
        ).check(correct, broken)
        assert python.to_dict(include_timings=False) == sqlite.to_dict(
            include_timings=False
        )
        assert python.error_kind == "internal_error"

    def test_string_division_is_not_compiled(self):
        instance = toy_university_instance()
        predicate = Comparison(
            "=", Arithmetic("/", ColumnRef("name"), Literal(2)), Literal(1.0)
        )
        plan = compile_plan(
            Selection(RelationRef("Student"), predicate), instance.schema
        )
        with pytest.raises(BackendUnsupportedError):
            compile_plan_to_sql(plan, instance.schema)

    def test_string_typed_parameter_division_raises_typeerror_on_both(self):
        # The parameter's type is unknown at compile time, so division does
        # run on SQLite — the UDF must then surface Python's real TypeError,
        # not a fabricated division-by-zero.
        instance = toy_university_instance()
        predicate = Comparison(
            ">", Arithmetic("/", ColumnRef("grade"), Param("d")), Literal(1)
        )
        query = Selection(RelationRef("Registration"), predicate)
        with pytest.raises(TypeError):
            EngineSession(instance).evaluate(query, {"d": "oops"})
        with pytest.raises(TypeError):
            EngineSession(instance, backend="sqlite").evaluate(query, {"d": "oops"})

    def test_bool_columns_round_trip(self):
        schema = DatabaseSchema.of(
            [
                RelationSchema.of(
                    "Flags",
                    [("name", DataType.STRING), ("active", DataType.BOOL)],
                )
            ]
        )
        instance = DatabaseInstance(schema)
        instance.relation("Flags").insert_all([("a", True), ("b", False)])
        query = parse_query("\\select_{active = true} Flags")
        python = EngineSession(instance).evaluate(query)
        sqlite = EngineSession(instance, backend="sqlite").evaluate(query)
        assert python.rows == sqlite.rows == frozenset({("a", True)})
        (row,) = sqlite.rows
        assert row[1] is True  # int 1 would break bit-identical serialization

    def test_reserved_and_dotted_identifiers(self):
        schema = DatabaseSchema.of(
            [
                RelationSchema.of(
                    "order",
                    [("group", DataType.STRING), ("select", DataType.INT)],
                )
            ]
        )
        instance = DatabaseInstance(schema)
        instance.relation("order").insert_all([("g1", 1), ("g2", 2)])
        query = parse_query('\\project_{p.group -> g} \\select_{p.select > 1} \\rename_{prefix: p} order')
        python = EngineSession(instance).evaluate(query)
        sqlite = EngineSession(instance, backend="sqlite").evaluate(query)
        assert python.rows == sqlite.rows == frozenset({("g2",)})
        sql = to_sql(query, schema)
        conn = connect_instance(instance)
        assert frozenset(conn.execute(sql).fetchall()) == {("g2",)}
        conn.close()

    def test_parameter_binding(self):
        instance = toy_university_instance()
        query = parse_query("\\project_{name} \\select_{grade >= @cutoff} Registration")
        python = EngineSession(instance).evaluate(query, {"cutoff": 95})
        session = EngineSession(instance, backend="sqlite")
        sqlite = session.evaluate(query, {"cutoff": 95})
        assert python.rows == sqlite.rows
        assert session.stats["sqlite_statements"] == 1
        # Unbound parameters fail the same way as the Python operators.
        with pytest.raises(QueryEvaluationError, match="unbound query parameter"):
            session.evaluate(query, {})

    def test_string_valued_parameter_against_numeric_column_fails_identically(self):
        # SQLite's cross-type ordering would happily answer grade < 'abc';
        # the binding check must refuse it so Python raises its TypeError
        # on both backends.
        instance = toy_university_instance()
        query = parse_query("\\select_{grade < @p} Registration")
        with pytest.raises(TypeError):
            EngineSession(instance).evaluate(query, {"p": "abc"})
        session = EngineSession(instance, backend="sqlite")
        with pytest.raises(TypeError):
            session.evaluate(query, {"p": "abc"})
        assert session.stats["sqlite_fallbacks"] == 1

    def test_unbound_parameter_over_empty_input_matches_python_laziness(self):
        # The Python operators resolve parameters lazily: if the filter's
        # input is empty the parameter is never read, so no error.  The
        # backend must fall back rather than eagerly refusing to bind.
        instance = toy_university_instance()
        query = parse_query(
            "\\select_{grade < @p} \\select_{dept = 'NOPE'} Registration"
        )
        python = EngineSession(instance).evaluate(query, {})
        session = EngineSession(instance, backend="sqlite")
        assert session.evaluate(query, {}).rows == python.rows == frozenset()
        assert session.stats["sqlite_fallbacks"] == 1

    def test_ungrouped_aggregate_over_empty_input_yields_no_rows(self):
        instance = toy_university_instance()
        query = parse_query("\\aggr_{ ; count(*) -> n} \\select_{dept = 'NOPE'} Registration")
        python = EngineSession(instance).evaluate(query)
        sqlite = EngineSession(instance, backend="sqlite").evaluate(query)
        assert python.rows == sqlite.rows == frozenset()


class TestBackendLifecycle:
    def test_data_version_reload(self):
        instance = toy_university_instance()
        session = EngineSession(instance, backend="sqlite")
        query = parse_query("\\project_{name} Student")
        before = session.evaluate(query).rows
        instance.relation("Student").insert(("Zoe", "ART"))
        after = session.evaluate(query).rows
        assert ("Zoe",) in after and ("Zoe",) not in before

    def test_compiled_sql_is_cached_per_plan(self):
        instance = toy_university_instance()
        backend = SqliteBackend(instance)
        plan = compile_plan(parse_query("\\select_{dept = 'CS'} Registration"), instance.schema)
        backend.execute_plan(plan)
        backend.execute_plan(plan)
        assert backend.stats["compile_misses"] == 1
        assert backend.stats["statements"] == 2
        assert backend.stats["loads"] == 1

    def test_unsupported_plan_falls_back_to_python(self):
        class OpaquePredicate(Predicate):
            """Not a member of the compilable predicate grammar."""

            def evaluate(self, schema, row, params):
                return row[schema.index_of("dept")] == "CS"

            def referenced_columns(self):
                return {"dept"}

            def __eq__(self, other):
                return isinstance(other, OpaquePredicate)

            def __hash__(self):
                return hash("OpaquePredicate")

        instance = toy_university_instance()
        query = Selection(RelationRef("Registration"), OpaquePredicate())
        session = EngineSession(instance, backend="sqlite")
        python = EngineSession(instance).evaluate(query)
        assert session.evaluate(query).rows == python.rows
        assert session.stats["sqlite_fallbacks"] == 1
        assert session.stats["sqlite_statements"] == 0

    def test_compile_rejects_opaque_scalars(self):
        instance = toy_university_instance()
        predicate = Comparison(
            "=", ColumnRef("dept"), Arithmetic("-", Literal("x"), Literal("y"))
        )
        plan = compile_plan(
            Selection(RelationRef("Registration"), predicate), instance.schema
        )
        with pytest.raises(BackendUnsupportedError):
            compile_plan_to_sql(plan, instance.schema)

    def test_nan_data_falls_back_instead_of_becoming_null(self):
        # sqlite3 binds NaN as NULL, which would silently change results;
        # the loader must refuse so the session falls back to Python.
        schema = DatabaseSchema.of(
            [RelationSchema.of("M", [("k", DataType.INT), ("x", DataType.FLOAT)])]
        )
        instance = DatabaseInstance(schema)
        instance.relation("M").insert_all([(1, 1.5), (2, float("nan"))])
        python = EngineSession(instance).evaluate(parse_query("M"))
        session = EngineSession(instance, backend="sqlite")
        sqlite = session.evaluate(parse_query("M"))
        assert session.stats["sqlite_fallbacks"] == 1
        assert not any(row[1] is None for row in sqlite.rows)
        assert len(sqlite.rows) == len(python.rows) == 2

    def test_oversized_integers_fall_back(self):
        instance = toy_university_instance()
        predicate = Comparison("<", ColumnRef("grade"), Literal(2**70))
        query = Selection(RelationRef("Registration"), predicate)
        session = EngineSession(instance, backend="sqlite")
        python = EngineSession(instance).evaluate(query)
        assert session.evaluate(query).rows == python.rows
        assert session.stats["sqlite_fallbacks"] == 1

    def test_provenance_stays_on_python_operators(self):
        instance = toy_university_instance()
        session = EngineSession(instance, backend="sqlite")
        schema, rows = session.annotated_rows(parse_query("\\select_{dept = 'CS'} Registration"))
        reference = EngineSession(instance).annotated_rows(
            parse_query("\\select_{dept = 'CS'} Registration")
        )
        assert rows == reference[1]
        assert session.stats["sqlite_statements"] == 0
