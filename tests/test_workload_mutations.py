"""Coverage for the mutation operators across the whole course workload.

Every mutation operator is applied to every course question, and every
resulting mutant must behave like a real (wrong) student submission:

* its DSL rendering parses back to an equivalent query,
* it evaluates to identical rows on the Python and SQLite backends,
* it is gradeable end-to-end through :class:`GradingService` — on *both*
  backends, with bit-identical outcomes.
"""

from __future__ import annotations

import pytest

from repro.api import GradingService
from repro.datagen import toy_university_instance
from repro.engine.session import EngineSession
from repro.parser import parse_query
from repro.workload import (
    ALL_MUTATION_OPERATORS,
    course_questions,
    generate_mutants,
    mutate_constants,
    to_dsl,
    tpch_queries,
)

_CONSTANT_POOL = ("ECON", "MATH", "BIO")


def _operators():
    operators = [(op.__name__, op) for op in ALL_MUTATION_OPERATORS]
    operators.append(
        ("mutate_constants", lambda expr: mutate_constants(expr, _CONSTANT_POOL))
    )
    return operators


_OPERATORS = _operators()


@pytest.fixture(scope="module")
def instance():
    return toy_university_instance()


@pytest.fixture(scope="module")
def sessions(instance):
    return EngineSession(instance), EngineSession(instance, backend="sqlite")


@pytest.fixture(scope="module")
def services(instance):
    python = GradingService.for_instance(instance, name="hidden")
    sqlite = GradingService.for_instance(instance, name="hidden", backend="sqlite")
    return python, sqlite


def _mutants_by_operator(operator):
    """(question, mutant) pairs the operator produces across all questions."""
    pairs = []
    for question in course_questions():
        for mutant in operator(question.correct_query):
            pairs.append((question, mutant))
    return pairs


class TestEveryOperatorOnEveryQuestion:
    @pytest.mark.parametrize("name,operator", _OPERATORS, ids=[n for n, _ in _OPERATORS])
    def test_operator_produces_mutants(self, name, operator):
        """Each operator fires somewhere in the course or TPC-H workload.

        The course questions use only =/<> comparisons and single-attribute
        group-bys, so ``relax_comparison_operators`` and ``mutate_group_by``
        find their targets in the TPC-H queries instead.
        """
        if _mutants_by_operator(operator):
            return
        tpch_mutants = [
            mutant
            for query in tpch_queries()
            for mutant in operator(query.correct_query)
        ]
        assert tpch_mutants, f"{name} produced no mutants on any workload"
        # TPC-H mutants must still parse via their DSL rendering.
        for mutant in tpch_mutants:
            parse_query(to_dsl(mutant.query))

    @pytest.mark.parametrize("name,operator", _OPERATORS, ids=[n for n, _ in _OPERATORS])
    def test_mutants_parse_and_evaluate_on_both_backends(
        self, name, operator, sessions
    ):
        python_session, sqlite_session = sessions
        for question, mutant in _mutants_by_operator(operator):
            text = to_dsl(mutant.query)
            reparsed = parse_query(text)
            rows = python_session.evaluate(mutant.query).rows
            assert python_session.evaluate(reparsed).rows == rows, (
                f"{name} mutant of {question.key} does not round-trip: {text}"
            )
            assert sqlite_session.evaluate(mutant.query).rows == rows, (
                f"{name} mutant of {question.key} diverges on SQLite: {text}"
            )

    @pytest.mark.parametrize("name,operator", _OPERATORS, ids=[n for n, _ in _OPERATORS])
    def test_mutants_are_gradeable_end_to_end(self, name, operator, services):
        python_service, sqlite_service = services
        for question, mutant in _mutants_by_operator(operator):
            python_outcome = python_service.check(question.correct_query, mutant.query)
            sqlite_outcome = sqlite_service.check(question.correct_query, mutant.query)
            assert python_outcome.error is None, (
                f"{name} mutant of {question.key} is not gradeable "
                f"({python_outcome.error_kind}: {python_outcome.error}); "
                f"mutant: {mutant.description}"
            )
            assert (
                python_outcome.to_dict(include_timings=False)
                == sqlite_outcome.to_dict(include_timings=False)
            ), f"{name} mutant of {question.key} grades differently across backends"


def test_full_mutant_pool_is_gradeable(services):
    """The deduplicated pool (as used by the experiments) grades cleanly."""
    python_service, sqlite_service = services
    graded = 0
    for question in course_questions():
        for mutant in generate_mutants(
            question.correct_query, constant_pool=_CONSTANT_POOL, max_mutants=6
        ):
            outcome = python_service.check(question.correct_query, mutant.query)
            assert outcome.error is None
            sqlite_outcome = sqlite_service.check(question.correct_query, mutant.query)
            assert outcome.to_dict(include_timings=False) == sqlite_outcome.to_dict(
                include_timings=False
            )
            graded += 1
    assert graded > 0
