"""Differential tests: the plan-based engine vs. the reference interpreters.

Every workload query (course homework on the university instance, beers
user-study problems, TPC-H benchmark queries) is executed through both the
historical tuple-at-a-time interpreters (:mod:`repro.engine.reference`) and
the new engine facades.  Row sets must match exactly under set semantics; for
SPJUD queries the provenance must additionally agree as a truth table —
identical candidate rows and identical Boolean values under random kept-tuple
assignments.
"""

from __future__ import annotations

import random

import pytest

from repro.datagen import (
    beers_instance,
    toy_beers_instance,
    toy_university_instance,
    tpch_instance,
    university_instance,
)
from repro.engine import EngineSession
from repro.engine.reference import ReferenceEvaluator, ReferenceProvenanceEvaluator
from repro.provenance import annotate
from repro.provenance.boolexpr import assignment_from_true_set
from repro.ra import GroupBy, evaluate
from repro.workload import beers_problems, course_questions, tpch_queries


def _has_aggregate(query) -> bool:
    return any(isinstance(node, GroupBy) for node in query.walk())


def _workload():
    """(label, instance, query) triples covering the whole query workload."""
    cases = []
    university = university_instance(40, seed=7)
    toy_university = toy_university_instance()
    for question in course_questions():
        for index, query in enumerate(
            (question.correct_query,) + question.handwritten_wrong_queries
        ):
            cases.append((f"course-{question.key}-{index}", university, query))
            cases.append((f"course-toy-{question.key}-{index}", toy_university, query))
    beers = beers_instance(num_drinkers=25, num_bars=8, num_beers=6, seed=11)
    toy_beers = toy_beers_instance()
    for problem in beers_problems():
        for index, query in enumerate(
            (problem.correct_query,) + problem.handwritten_wrong_queries
        ):
            cases.append((f"beers-{problem.key}-{index}", beers, query))
            cases.append((f"beers-toy-{problem.key}-{index}", toy_beers, query))
    tpch = tpch_instance(scale=0.05, seed=3)
    for tpch_query in tpch_queries():
        for index, query in enumerate(
            (tpch_query.correct_query,) + tpch_query.wrong_queries
        ):
            cases.append((f"tpch-{tpch_query.key}-{index}", tpch, query))
    return cases


_CASES = _workload()


@pytest.mark.parametrize("label,instance,query", _CASES, ids=[c[0] for c in _CASES])
def test_engine_matches_reference_rows(label, instance, query):
    reference_rows = set(ReferenceEvaluator(instance, {}).rows(query))
    engine_rows = set(evaluate(query, instance).rows)
    assert engine_rows == reference_rows


@pytest.mark.parametrize(
    "label,instance,query",
    [c for c in _CASES if not _has_aggregate(c[2])],
    ids=[c[0] for c in _CASES if not _has_aggregate(c[2])],
)
def test_engine_matches_reference_provenance(label, instance, query):
    reference = ReferenceProvenanceEvaluator(instance, {}).annotated(query)
    annotated = annotate(query, instance)

    # Exact-mode execution reproduces the historical annotations bit for bit:
    # same candidate rows, same expression for each.
    assert dict(annotated.items()) == reference

    # Belt and braces: the truth tables agree on random subinstances.
    tids = sorted(instance.all_tids())
    rng = random.Random(hash(label) & 0xFFFF)
    for _ in range(5):
        kept = {tid for tid in tids if rng.random() < 0.6}
        assignment = assignment_from_true_set(kept)
        for row, expression in annotated.items():
            assert expression.evaluate(assignment) == reference[row].evaluate(assignment)


@pytest.mark.parametrize(
    "label,instance,query",
    [c for c in _CASES if not _has_aggregate(c[2])][::7],
    ids=[c[0] for c in [c for c in _CASES if not _has_aggregate(c[2])][::7]],
)
def test_provenance_truth_table_matches_subinstance_evaluation(label, instance, query):
    """Prv_Q(v) is true under D' exactly when v ∈ Q(D') — engine end to end."""
    annotated = annotate(query, instance)
    tids = sorted(instance.all_tids())
    rng = random.Random(len(label))
    for _ in range(3):
        kept = {tid for tid in tids if rng.random() < 0.5}
        sub = instance.subinstance(kept)
        actual = set(evaluate(query, sub).rows)
        assignment = assignment_from_true_set(kept)
        assert actual <= set(annotated.rows())
        for row, expression in annotated.items():
            assert expression.evaluate(assignment) == (row in actual)


def test_session_and_one_shot_agree_on_params():
    """Parameterized evaluation matches between cached sessions and one-shots."""
    from repro.ra import ge, param, relation, select

    instance = toy_university_instance()
    query = select(relation("Registration"), ge("grade", param("cutoff")))
    session = EngineSession(instance)
    for cutoff in (0, 88, 95, 200):
        expected = set(ReferenceEvaluator(instance, {"cutoff": cutoff}).rows(query))
        assert set(session.evaluate(query, {"cutoff": cutoff}).rows) == expected
