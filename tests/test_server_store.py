"""The persistent result store: keying, durability, and write races."""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.api import GradingService, SubmissionRequest
from repro.server.store import ResultStore, StoreKey
from repro.server.workers import grade_envelope

REFERENCE = "\\project_{name} \\select_{dept = 'ECON'} Registration"
SUBMISSION = "\\project_{name} Registration"


def make_key(**overrides) -> StoreKey:
    fields = dict(
        dataset="toy-university",
        seed=0,
        backend="python",
        correct_query=REFERENCE,
        test_query=SUBMISSION,
    )
    fields.update(overrides)
    return StoreKey.for_request(**fields)


class TestStoreKey:
    def test_identical_requests_share_a_key(self):
        assert make_key() == make_key()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dataset": "university:50"},
            {"seed": 7},
            {"backend": "sqlite"},
            {"correct_query": SUBMISSION},
            {"test_query": REFERENCE},
            {"algorithm": "basic"},
            {"params": {"d": "ECON"}},
            {"explain": False},
            {"options": {"max_size": 3}},
        ],
    )
    def test_every_grading_dimension_changes_the_key(self, overrides):
        assert make_key(**overrides) != make_key()

    def test_param_order_is_canonical(self):
        a = make_key(params={"a": 1, "b": 2})
        b = make_key(params={"b": 2, "a": 1})
        assert a == b


class TestResultStore:
    def test_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite3") as store:
            key = make_key()
            assert store.get(key) is None
            payload = {"correct": False, "outcome": {"error": None}}
            assert store.put(key, payload) is True
            assert store.get(key) == payload
            assert len(store) == 1
            info = store.info()
            assert info["hits"] == 1 and info["misses"] == 1 and info["writes"] == 1

    def test_first_writer_wins(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite3") as store:
            key = make_key()
            assert store.put(key, {"v": 1}) is True
            assert store.put(key, {"v": 2}) is False
            assert store.get(key) == {"v": 1}
            assert len(store) == 1
            assert store.stats["races"] == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        with ResultStore(path) as store:
            store.put(make_key(), {"correct": True})
        with ResultStore(path) as store:
            assert store.get(make_key()) == {"correct": True}

    def test_memory_store_works_without_a_file(self):
        with ResultStore() as store:
            store.put(make_key(), {"correct": True})
            assert store.get(make_key()) == {"correct": True}

    def test_threaded_writers_one_row(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite3") as store:
            key = make_key()
            barrier = threading.Barrier(8)
            inserted = []

            def write(value: int) -> None:
                barrier.wait()
                inserted.append(store.put(key, {"writer": 0}))

            threads = [threading.Thread(target=write, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sum(inserted) == 1
            assert len(store) == 1


def _race_worker(path: str, barrier, results) -> None:
    """Grade the same (reference, submission) pair and race on the store."""
    service = GradingService()
    graded = service.submit(
        SubmissionRequest(REFERENCE, SUBMISSION, dataset="toy-university")
    )
    envelope = {**grade_envelope(graded), "id": None}
    store = ResultStore(path)
    key = StoreKey.for_request(
        dataset="toy-university",
        seed=0,
        backend="python",
        correct_query=REFERENCE,
        test_query=SUBMISSION,
    )
    barrier.wait()  # both workers hit the store at the same instant
    store.put(key, envelope)
    stored = store.get(key)
    store.close()
    results.put(json.dumps(stored, sort_keys=True))


class TestConcurrentWorkers:
    def test_two_processes_grade_same_pair_one_row(self, tmp_path):
        """The satellite scenario: two workers race on one (ref, sub) pair.

        Both grade independently, both write, exactly one row is stored, and
        both read back bit-identical outcomes.
        """
        path = str(tmp_path / "store.sqlite3")
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        results = ctx.Queue()
        procs = [
            ctx.Process(target=_race_worker, args=(path, barrier, results))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        payloads = [results.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert payloads[0] == payloads[1]
        outcome = json.loads(payloads[0])
        assert outcome["correct"] is False
        assert outcome["outcome"]["report"] is not None
        with ResultStore(path) as store:
            assert len(store) == 1


class TestAgeAndMigration:
    def test_age_bounds_empty_store_is_none(self):
        with ResultStore() as store:
            assert store.age_bounds() is None

    def test_age_bounds_track_newest_and_oldest(self):
        with ResultStore() as store:
            store.put(make_key(seed=1), {"correct": True})
            store.put(make_key(seed=2), {"correct": True})
            newest, oldest = store.age_bounds()
            assert 0.0 <= newest <= oldest
            assert oldest < 60.0  # both rows were written just now

    def test_legacy_created_at_column_is_migrated(self, tmp_path):
        import sqlite3
        import time

        path = str(tmp_path / "legacy.sqlite3")
        legacy = sqlite3.connect(path)
        legacy.execute(
            """
            CREATE TABLE results (
                schema_version  INTEGER NOT NULL,
                dataset         TEXT    NOT NULL,
                seed            INTEGER NOT NULL,
                backend         TEXT    NOT NULL,
                ref_hash        TEXT    NOT NULL,
                sub_hash        TEXT    NOT NULL,
                options_hash    TEXT    NOT NULL,
                payload         TEXT    NOT NULL,
                created_at      REAL    NOT NULL,
                PRIMARY KEY (schema_version, dataset, seed, backend,
                             ref_hash, sub_hash, options_hash)
            )
            """
        )
        key = make_key()
        from dataclasses import astuple

        legacy.execute(
            "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (*astuple(key), json.dumps({"correct": True}), time.time() - 5.0),
        )
        legacy.commit()
        legacy.close()

        with ResultStore(path) as store:
            columns = {
                row[1]
                for row in store._conn.execute("PRAGMA table_info(results)")
            }
            assert "created_at_unix" in columns
            assert "created_at" not in columns
            assert store.get(key) == {"correct": True}  # rows survive
            newest, oldest = store.age_bounds()
            assert newest >= 4.0  # the legacy timestamp still means wall-clock
