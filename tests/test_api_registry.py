"""Tests for the dataset registry: spec resolution, caching, custom datasets."""

import pytest

from repro.api import DatasetRegistry, default_registry
from repro.catalog.instance import DatabaseInstance
from repro.datagen import toy_university_instance, university_schema
from repro.errors import ReproError


@pytest.fixture()
def registry():
    return DatasetRegistry()


class TestResolution:
    def test_builtin_specs_resolve(self, registry):
        handle = registry.resolve("toy-university")
        assert handle.instance.total_size() == 11
        assert handle.session.instance is handle.instance
        assert registry.resolve("university:20", seed=1).instance.total_size() > 0

    def test_resolve_caches_handles(self, registry):
        first = registry.resolve("university:20", seed=1)
        again = registry.resolve("university:20", seed=1)
        assert again is first

    def test_distinct_specs_and_seeds_get_distinct_handles(self, registry):
        base = registry.resolve("university:20", seed=1)
        assert registry.resolve("university:30", seed=1) is not base
        assert registry.resolve("university:20", seed=2) is not base

    def test_build_returns_fresh_instances(self, registry):
        first = registry.build("university:20", seed=1)
        second = registry.build("university:20", seed=1)
        assert first is not second
        assert first.total_size() == second.total_size()

    def test_unknown_spec_raises_with_known_names(self, registry):
        with pytest.raises(ReproError, match="university"):
            registry.resolve("mystery:3")
        with pytest.raises(ReproError):
            registry.build("mystery")


class TestRegistration:
    def test_register_instance_resolves_shared(self, registry):
        instance = toy_university_instance()
        registry.register_instance("hidden", instance)
        assert registry.resolve("hidden").instance is instance
        assert registry.build("hidden") is instance

    def test_register_builder_receives_argument_and_seed(self, registry):
        seen = []

        def build(argument, seed):
            seen.append((argument, seed))
            return DatabaseInstance(university_schema())

        registry.register_builder("custom", build)
        registry.resolve("custom:abc", seed=9)
        assert seen == [("abc", 9)]

    def test_reregistering_invalidates_cached_handles(self, registry):
        registry.register_instance("hidden", toy_university_instance())
        old = registry.resolve("hidden")
        replacement = toy_university_instance()
        registry.register_instance("hidden", replacement)
        assert registry.resolve("hidden").instance is replacement
        assert registry.resolve("hidden") is not old

    def test_known_datasets_lists_builtins(self, registry):
        names = registry.known_datasets()
        assert "university" in names and "tpch" in names

    def test_instance_backed_datasets_ignore_seed_and_argument(self, registry):
        instance = toy_university_instance()
        registry.register_instance("hidden", instance)
        base = registry.resolve("hidden")
        # A pre-built instance has one warm session, whatever the caller says.
        assert registry.resolve("hidden", seed=5) is base
        assert registry.resolve("hidden:whatever", seed=7) is base

    def test_handle_cache_is_bounded(self, registry):
        registry.max_handles = 3
        for n in range(5):
            registry.register_instance(f"ds{n}", toy_university_instance())
            registry.resolve(f"ds{n}")
        assert registry.cache_info()["resolved_handles"] == 3
        # The most recently used handles survive.
        assert registry.resolve("ds4") is registry.resolve("ds4")


class TestDefaultRegistry:
    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()
