"""End-to-end integration tests across the whole pipeline.

These tests exercise the exact workflows the paper describes: a student
submits a wrong query, RATest returns a small counterexample, the student can
inspect both query results on it; TPC-H regression testing of a rewritten
aggregate query; and the invariant that every counterexample is a valid,
verifying subinstance regardless of which algorithm produced it.
"""

import pytest

from repro.catalog import close_under_foreign_keys
from repro.core import find_smallest_counterexample
from repro.datagen import beers_instance, toy_university_instance, tpch_instance, university_instance
from repro.ra import evaluate, results_differ
from repro.ratest import RATest
from repro.theory import brute_force_smallest_counterexample
from repro.workload import beers_problem, course_questions, tpch_query


class TestStudentWorkflow:
    def test_grading_session_on_hidden_instance(self):
        hidden = university_instance(60, seed=42)
        tool = RATest(hidden)
        question = course_questions()[1]
        wrong = question.handwritten_wrong_queries[0]
        outcome = tool.check(question.correct_query, wrong)
        assert not outcome.correct
        report = outcome.report
        assert report is not None
        # The counterexample is tiny compared to the hidden instance.
        assert report.counterexample_size <= 5
        assert hidden.total_size() > 20 * report.counterexample_size
        # And it really distinguishes the two queries.
        assert results_differ(
            question.correct_query, wrong, report.result.counterexample
        )

    def test_counterexamples_much_smaller_than_instance_across_questions(self):
        hidden = university_instance(80, seed=31)
        tool = RATest(hidden)
        sizes = []
        for question in course_questions():
            for wrong in question.handwritten_wrong_queries:
                outcome = tool.check(question.correct_query, wrong)
                if outcome.correct or outcome.report is None:
                    continue
                sizes.append(outcome.report.counterexample_size)
        assert sizes
        assert max(sizes) <= 10
        assert sum(sizes) / len(sizes) < 6

    def test_beers_problem_counterexample(self):
        instance = beers_instance(num_drinkers=20, num_bars=8, num_beers=6, seed=13)
        problem = beers_problem("g")
        wrong = problem.handwritten_wrong_queries[0]
        if not results_differ(problem.correct_query, wrong, instance):
            pytest.skip("wrong variant not distinguishable on this instance")
        result = find_smallest_counterexample(problem.correct_query, wrong, instance)
        assert result.verified
        assert result.counterexample.satisfies_constraints()
        assert result.size <= 6


class TestOptimalityAgainstBruteForce:
    @pytest.mark.parametrize("question_index", [0, 1, 3, 7])
    def test_optsigma_is_optimal_on_toy_instance(self, question_index):
        instance = toy_university_instance()
        question = course_questions()[question_index]
        wrong = question.handwritten_wrong_queries[0]
        if not results_differ(question.correct_query, wrong, instance):
            pytest.skip("not distinguishable on the toy instance")
        result = find_smallest_counterexample(question.correct_query, wrong, instance)
        expected = brute_force_smallest_counterexample(
            question.correct_query, wrong, instance, max_size=result.size
        )
        assert result.size == len(expected)

    def test_swp_reduction_can_miss_a_smaller_counterexample(self):
        """Documented nuance of the paper's SCP→SWP reduction.

        The reduction only considers output tuples on which the queries differ
        over the *full* instance.  For non-monotone queries a smaller
        counterexample may exist whose distinguishing tuple only appears on the
        subinstance — question q3 ("no CS course") exhibits exactly this: a
        single student with her CS registrations removed already distinguishes
        the queries, but that student is not in the symmetric difference on D.
        """
        instance = toy_university_instance()
        question = course_questions()[2]
        wrong = question.handwritten_wrong_queries[0]
        result = find_smallest_counterexample(question.correct_query, wrong, instance)
        brute = brute_force_smallest_counterexample(
            question.correct_query, wrong, instance, max_size=result.size
        )
        assert result.verified
        assert len(brute) <= result.size


class TestTpchRegressionWorkflow:
    def test_rewritten_query_regression(self):
        # "Regression testing of a rewritten query": the wrong variant plays the
        # role of a buggy rewrite of the reference aggregate query.
        instance = tpch_instance(scale=0.08, seed=2)
        query = tpch_query("Q16")
        buggy_rewrite = query.wrong_queries[0]
        if not results_differ(query.correct_query, buggy_rewrite, instance):
            pytest.skip("rewrite not distinguishable at this scale")
        result = find_smallest_counterexample(query.correct_query, buggy_rewrite, instance)
        assert result.verified
        assert result.size < 20
        assert result.size < instance.total_size() / 10


class TestCounterexampleInvariants:
    def test_foreign_key_closure_of_any_result(self):
        instance = university_instance(40, seed=8)
        question = course_questions()[4]
        wrong = question.handwritten_wrong_queries[0]
        if not results_differ(question.correct_query, wrong, instance):
            pytest.skip("not distinguishable")
        for algorithm in ("optsigma", "basic"):
            result = find_smallest_counterexample(
                question.correct_query, wrong, instance, algorithm=algorithm
            )
            closed = close_under_foreign_keys(instance, result.tids)
            assert closed == set(result.tids), f"{algorithm} returned an FK-open set"
            assert result.verified

    def test_counterexample_results_match_reporting(self):
        instance = toy_university_instance()
        question = course_questions()[1]
        result = find_smallest_counterexample(
            question.correct_query, question.handwritten_wrong_queries[0], instance
        )
        assert result.q1_rows.rows == evaluate(question.correct_query, result.counterexample).rows
        assert result.q2_rows.rows == evaluate(
            question.handwritten_wrong_queries[0], result.counterexample
        ).rows
