"""Delta-aware sessions: mutation API, incremental caches, clause reuse.

The tentpole contract under test: a warm :class:`EngineSession` survives
instance mutations.  Memo entries whose plans scan only untouched relations
survive verbatim, set-domain entries over touched relations are patched
differentially, provenance entries are dropped (one cold re-evaluation), and
everything stays bit-identical to a cold session over the mutated data.  The
solver side: structurally equal provenance CNFs (renamed duplicate
submissions) warm-start from a cached clause set.
"""

from __future__ import annotations

import pytest

from repro.catalog.delta import Delta, RelationDelta
from repro.catalog.instance import MUTATION_LOG_CAPACITY, DatabaseInstance
from repro.datagen import toy_university_instance, university_schema
from repro.engine.session import EngineSession
from repro.errors import SchemaError
from repro.parser.ra_parser import parse_query


def _fresh_copy(instance: DatabaseInstance) -> DatabaseInstance:
    """An independent instance with identical contents and tids."""
    return DatabaseInstance.from_dict(instance.to_dict())


class TestMutationAPI:
    def test_delete_returns_values_and_bumps_version(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        tid = student.tids()[0]
        before = student.version
        values = student.delete(tid)
        assert tid not in student
        assert values not in student.value_set() or True  # duplicates allowed
        assert student.version == before + 1

    def test_delete_unknown_tid_raises_keyerror(self):
        instance = toy_university_instance()
        with pytest.raises(KeyError, match="Student:999"):
            instance.relation("Student").delete("Student:999")

    def test_update_preserves_position_and_identifier(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        tid = student.tids()[1]
        order_before = student.tids()
        old, new = student.update(tid, ("Renamed", "CS"))
        assert student.tids() == order_before
        assert student.row(tid) == ("Renamed", "CS")
        assert old != new

    def test_update_to_identical_values_is_a_no_op(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        tid = student.tids()[0]
        before = student.version
        old, new = student.update(tid, student.row(tid))
        assert old == new
        assert student.version == before
        assert instance.update(tid, student.row(tid)).relations == frozenset()

    def test_update_arity_mismatch_raises_schema_error(self):
        instance = toy_university_instance()
        tid = instance.relation("Student").tids()[0]
        with pytest.raises(SchemaError, match="expects 2 values"):
            instance.relation("Student").update(tid, ("only-one",))

    def test_instance_level_mutations_return_typed_deltas(self):
        instance = toy_university_instance()
        delta = instance.insert_row("Student", ("Zoe", "CS"))
        assert delta.relations == frozenset({"Student"})
        (change,) = delta.changes
        assert change.inserted and not change.deleted
        tid = change.inserted[0][0]
        delta = instance.update(tid, ("Zoe", "ECON"))
        (change,) = delta.changes
        assert change.inserted[0][1] == ("Zoe", "ECON")
        assert change.deleted[0][1] == ("Zoe", "CS")
        delta = instance.delete(tid)
        (change,) = delta.changes
        assert change.deleted[0][0] == tid


class TestMutationLog:
    def test_changes_since_returns_ordered_entries(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        base = student.version
        tid = student.insert(("Ada", "CS"))
        student.update(tid, ("Ada", "MATH"))
        student.delete(tid)
        entries = student.changes_since(base)
        assert [entry[1] for entry in entries] == ["+", "~", "-"]
        assert [entry[0] for entry in entries] == [base + 1, base + 2, base + 3]

    def test_changes_since_current_version_is_empty(self):
        student = toy_university_instance().relation("Student")
        assert student.changes_since(student.version) == []

    def test_future_version_reports_a_gap(self):
        student = toy_university_instance().relation("Student")
        assert student.changes_since(student.version + 1) is None

    def test_log_eviction_reports_a_gap(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        base = student.version
        for i in range(MUTATION_LOG_CAPACITY + 1):
            tid = student.insert((f"bulk{i}", "CS"))
            student.delete(tid)
        assert student.changes_since(base) is None

    def test_net_delta_collapses_insert_update_delete(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        base = student.version
        tid = student.insert(("Ada", "CS"))
        student.update(tid, ("Ada", "MATH"))
        student.delete(tid)
        assert student.delta_since(base).is_empty()

    def test_net_delta_collapses_update_back_to_original(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        tid = student.tids()[0]
        original = student.row(tid)
        base = student.version
        student.update(tid, ("Elsewhere", "ART"))
        student.update(tid, original)
        assert student.delta_since(base).is_empty()

    def test_subset_inherits_version_but_not_log(self):
        instance = toy_university_instance()
        student = instance.relation("Student")
        base = student.version
        student.insert(("Ada", "CS"))
        sub = student.subset(student.tids()[:2])
        assert sub.version == student.version  # no version aliasing
        assert sub.changes_since(base) is None  # fresh copy: gap, cold eval

    def test_delta_merge_nets_out_round_trips(self):
        insert = Delta((RelationDelta("R", inserted=(("R:1", (1,)),)),))
        delete = Delta((RelationDelta("R", deleted=(("R:1", (1,)),)),))
        # Insert-then-delete and delete-then-reinsert-identical both net out.
        assert Delta.merge([insert, delete]).relations == frozenset()
        assert Delta.merge([delete, insert]).relations == frozenset()
        # Reinserting *different* values is a net update.
        replace = Delta((RelationDelta("R", inserted=(("R:1", (2,)),)),))
        merged = Delta.merge([delete, replace]).by_relation()["R"]
        assert merged.deleted == (("R:1", (1,)),)
        assert merged.inserted == (("R:1", (2,)),)


class TestIndexMaintenance:
    def test_incremental_index_equals_rebuild_after_mixed_edits(self):
        instance = toy_university_instance()
        reg = instance.relation("Registration")
        index = reg.hash_index((2,))  # by dept
        tid = reg.insert(("Mary", "999", "CS", 50))
        reg.update(tid, ("Mary", "999", "ART", 50))
        reg.delete(reg.tids()[0])
        fresh = {}
        for t, values in reg.tuples():
            fresh.setdefault((values[2],), []).append((t, values))
        assert index == fresh

    def test_distinct_count_maintained_under_delete(self):
        instance = toy_university_instance()
        reg = instance.relation("Registration")
        assert reg.distinct_count((2,)) == len({v[2] for v in reg._rows.values()})
        # Delete every tuple of one department; the count must drop.
        doomed = [t for t, v in reg.tuples() if v[2] == "CS"]
        for tid in doomed:
            reg.delete(tid)
        assert reg.distinct_count((2,)) == len({v[2] for v in reg._rows.values()})


class TestSessionDeltaMaintenance:
    QUERIES = (
        r"\project_{name} Student",
        r"\select_{dept = 'CS'} Registration",
        r"\project_{name} (\select_{grade > 60} Registration)",
        r"Student \join Registration",
        r"\aggr_{group: name; count(*) -> n, avg(grade) -> g} Registration",
        r"\project_{name} Student \diff \project_{name} Registration",
    )

    def _warm(self, instance):
        session = EngineSession(instance)
        expressions = [parse_query(q) for q in self.QUERIES]
        for expression in expressions:
            session.evaluate(expression)
        return session, expressions

    def test_untouched_relation_memos_survive(self):
        instance = toy_university_instance()
        session, _ = self._warm(instance)
        instance.insert_row("Student", ("Zoe", "CS"))
        counts = session.apply_delta()
        assert counts["delta_maintained"] > 0  # Registration-only subplans
        assert counts["delta_fallback"] == 0
        assert session.cache_info()["invalidations"] == 0

    def test_patched_results_match_a_cold_session(self):
        instance = toy_university_instance()
        session, expressions = self._warm(instance)
        reg = instance.relation("Registration")
        instance.insert_row("Registration", ("Mary", "999", "CS", 88))
        instance.update(reg.tids()[0], ("Mary", "103", "MATH", 31))
        instance.delete(reg.tids()[1])
        instance.insert_row("Student", ("Zoe", "CS"))
        counts = session.apply_delta()
        assert counts["delta_patched"] > 0
        cold = EngineSession(instance)
        for expression in expressions:
            assert session.evaluate(expression) == cold.evaluate(expression)
        assert session.cache_info()["invalidations"] == 0

    def test_log_gap_falls_back_to_wholesale_invalidation(self):
        instance = toy_university_instance()
        session, expressions = self._warm(instance)
        student = instance.relation("Student")
        tid = student.insert(("Zoe", "CS"))
        student._log.clear()  # simulate eviction past the needed suffix
        counts = session.apply_delta()
        assert counts["delta_fallback"] == 1
        assert session.cache_info()["invalidations"] == 1
        cold = EngineSession(instance)
        for expression in expressions:
            assert session.evaluate(expression) == cold.evaluate(expression)

    def test_provenance_entries_over_touched_relations_are_dropped(self):
        instance = toy_university_instance()
        session = EngineSession(instance)
        query = parse_query(r"\select_{major = 'CS'} Student")
        session.annotated_rows(query)
        before = session.cache_info()["delta_dropped"]
        instance.insert_row("Student", ("Zoe", "CS"))
        counts = session.apply_delta()
        assert counts["delta_dropped"] >= 1
        # The provenance of the fresh instance still comes out right (cold).
        _, rows = session.annotated_rows(query)
        assert any(values == ("Zoe", "CS") for values in rows)
        assert session.cache_info()["delta_dropped"] > before

    def test_apply_delta_without_mutation_reports_nothing(self):
        instance = toy_university_instance()
        session, _ = self._warm(instance)
        counts = session.apply_delta()
        assert counts == {
            "delta_maintained": 0,
            "delta_patched": 0,
            "delta_dropped": 0,
            "delta_fallback": 0,
        }

    def test_mutations_accumulated_while_cold_are_absorbed_lazily(self):
        """The session reconciles on the next execute, not only on apply_delta."""
        instance = toy_university_instance()
        session, expressions = self._warm(instance)
        instance.insert_row("Student", ("Zoe", "CS"))
        instance.insert_row("Registration", ("Zoe", "101", "CS", 91))
        cold = EngineSession(instance)
        for expression in expressions:
            assert session.evaluate(expression) == cold.evaluate(expression)
        info = session.cache_info()
        assert info["invalidations"] == 0
        assert info["delta_patched"] > 0


class TestClauseReuse:
    def test_renamed_duplicate_submission_hits_the_clause_cache(self):
        from repro.core.optsigma import smallest_witness_optsigma

        instance = toy_university_instance()
        session = EngineSession(instance)
        ref = parse_query(r"\select_{major = 'CS'} Student")
        wrong = parse_query(r"\select_{major = 'ECON'} Student")
        renamed = parse_query(
            r"\rename_{who -> name} (\select_{major = 'ECON'} "
            r"(\rename_{name -> who} Student))"
        )
        first = smallest_witness_optsigma(ref, wrong, instance, session=session)
        assert session.clause_cache.misses >= 1
        hits_before = session.clause_cache.hits
        second = smallest_witness_optsigma(ref, renamed, instance, session=session)
        assert session.clause_cache.hits > hits_before
        # Warm-started solving must not change the grade.
        assert first.distinguishing_row == second.distinguishing_row
        assert first.tids == second.tids
        assert second.optimal

    def test_warm_and_cold_solves_agree(self):
        from repro.core.fk import foreign_key_clauses
        from repro.provenance import annotate
        from repro.ra.ast import Difference
        from repro.solver.clausecache import ClauseCache
        from repro.solver.minones import MinOnesProblem, MinOnesSolver

        from repro.ra import evaluate

        instance = toy_university_instance()
        q1 = parse_query(r"\select_{grade > 60} Registration")
        q2 = parse_query(r"\select_{grade > 90} Registration")
        difference = Difference(q1, q2)
        row = sorted(evaluate(difference, instance).rows)[0]
        annotated = annotate(difference, instance)
        expression = annotated.expression_for(row)

        def build():
            problem = MinOnesProblem()
            problem.add_constraint(expression)
            for clause in foreign_key_clauses(instance, expression.variables()):
                problem.add_foreign_key(clause.child, clause.parents)
            return problem

        cache = ClauseCache()
        cold = MinOnesSolver(build(), clause_cache=cache).minimize()
        assert cache.misses == 1 and cache.hits == 0
        warm = MinOnesSolver(build(), clause_cache=cache).minimize()
        assert cache.hits == 1
        assert warm.cost == cold.cost
        assert warm.optimal == cold.optimal
        assert warm.true_variables == cold.true_variables


class TestSchemaChangeStillInvalidates:
    def test_relation_set_change_forces_wholesale_drop(self):
        instance = toy_university_instance()
        session = EngineSession(instance)
        session.evaluate(parse_query(r"\project_{name} Student"))
        # Simulate a relation appearing (e.g. a re-registered instance).
        from repro.catalog.instance import Relation

        extra_schema = university_schema().relation("Student")
        instance.relations["Ghost"] = Relation(extra_schema)
        session.apply_delta()
        assert session.cache_info()["invalidations"] == 1
        del instance.relations["Ghost"]
