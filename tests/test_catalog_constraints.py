"""Tests for integrity constraints and foreign-key closure."""

import pytest

from repro.catalog import (
    DatabaseInstance,
    DatabaseSchema,
    DataType,
    ForeignKeyConstraint,
    FunctionalDependency,
    KeyConstraint,
    NotNullConstraint,
    RelationSchema,
    close_under_foreign_keys,
)
from repro.catalog.schema import Attribute
from repro.datagen import toy_university_instance
from repro.errors import SchemaError


def _schema_with_nullable():
    return DatabaseSchema.of(
        [
            RelationSchema(
                "R",
                (
                    Attribute("a", DataType.INT),
                    Attribute("b", DataType.STRING, nullable=True),
                ),
            )
        ]
    )


class TestKeyConstraint:
    def test_satisfied(self):
        instance = toy_university_instance()
        assert KeyConstraint("Student", ("name",)).holds(instance)

    def test_violated(self):
        instance = toy_university_instance()
        instance.relation("Student").insert(("Mary", "ECON"))
        violations = KeyConstraint("Student", ("name",)).violations(instance)
        assert len(violations) == 1
        assert "Mary" in violations[0]

    def test_composite_key(self):
        instance = toy_university_instance()
        assert KeyConstraint("Registration", ("name", "course")).holds(instance)

    def test_closed_under_subinstances_flag(self):
        assert KeyConstraint("Student", ("name",)).closed_under_subinstances
        fk = ForeignKeyConstraint("Registration", ("name",), "Student", ("name",))
        assert not fk.closed_under_subinstances


class TestNotNullAndFD:
    def test_not_null_violation(self):
        schema = _schema_with_nullable()
        instance = DatabaseInstance(schema)
        instance.relation("R").insert((1, None))
        assert NotNullConstraint("R", "b").violations(instance)

    def test_not_null_satisfied(self):
        schema = _schema_with_nullable()
        instance = DatabaseInstance(schema)
        instance.relation("R").insert((1, "x"))
        assert NotNullConstraint("R", "b").holds(instance)

    def test_functional_dependency_violation(self):
        instance = toy_university_instance()
        # name -> major holds; add a conflicting row to break it.
        instance.relation("Student").insert(("Mary", "MATH"))
        fd = FunctionalDependency("Student", ("name",), ("major",))
        assert fd.violations(instance)

    def test_functional_dependency_satisfied(self):
        instance = toy_university_instance()
        assert FunctionalDependency("Student", ("name",), ("major",)).holds(instance)


class TestForeignKey:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKeyConstraint("Registration", ("name", "course"), "Student", ("name",))

    def test_implications(self):
        instance = toy_university_instance()
        fk = ForeignKeyConstraint("Registration", ("name",), "Student", ("name",))
        implications = fk.implications(instance)
        assert implications["Registration:1"] == ["Student:1"]
        assert len(implications) == 8

    def test_violation_on_dangling_child(self):
        instance = toy_university_instance()
        instance.relation("Registration").insert(("Ghost", "101", "CS", 90))
        fk = ForeignKeyConstraint("Registration", ("name",), "Student", ("name",))
        assert fk.violations(instance)

    def test_subinstance_can_violate_fk(self):
        instance = toy_university_instance()
        sub = instance.subinstance({"Registration:1"})
        assert not sub.satisfies_constraints()

    def test_close_under_foreign_keys_adds_parent(self):
        instance = toy_university_instance()
        closed = close_under_foreign_keys(instance, {"Registration:1"})
        assert closed == {"Registration:1", "Student:1"}

    def test_close_under_foreign_keys_idempotent(self):
        instance = toy_university_instance()
        closed = close_under_foreign_keys(instance, {"Registration:4", "Student:2"})
        assert closed == {"Registration:4", "Student:2"}

    def test_closed_subinstance_satisfies_constraints(self):
        instance = toy_university_instance()
        closed = close_under_foreign_keys(instance, {"Registration:6", "Registration:3"})
        assert instance.subinstance(closed).satisfies_constraints()
