"""Differential fuzzing of delta maintenance: warm sessions vs. cold truth.

The delta-aware :class:`~repro.engine.session.EngineSession` keeps memoized
subplan results alive across instance mutations by patching them with
propagated deltas (``repro.engine.delta``) instead of discarding everything.
That optimization is only sound if a warm, repeatedly-patched session is
*bit-identical* to a session built from scratch on the mutated data — which
is exactly what this suite checks, under seeded random edit streams.

Each trial: build an instance, warm one session on a pool of fuzzer-generated
queries, then loop rounds of random single-tuple edits (insert / delete /
update, schema-typed values).  After every round each pool query is evaluated
three ways — the warm session (delta-maintained), a fresh cold session, and
the pre-engine reference interpreter — and all row sets must agree exactly.
On failure the assertion message is a reproduction one-liner: the trial seed,
the round number, the edit log of that round, and the query's DSL text.

``REPRO_FUZZ_BUDGET`` scales the trial count (default 6 trials x 5 rounds);
the suite also asserts the warm session really maintained caches (non-zero
patch counters, no log-gap fallbacks) so the test cannot silently degrade
into cold-vs-cold.
"""

from __future__ import annotations

import os
import random
from typing import Any

import pytest

from repro.catalog.instance import DatabaseInstance
from repro.catalog.types import DataType
from repro.datagen import toy_beers_instance, toy_university_instance
from repro.engine.reference import ReferenceEvaluator
from repro.engine.session import EngineSession
from repro.workload.fuzz import QueryFuzzer, perturb_instance

pytestmark = pytest.mark.fuzz

QUERY_POOL = 12  # queries warmed per trial
ROUNDS = 5  # mutation rounds per trial
EDITS_PER_ROUND = 4  # single-tuple edits per round


def _trials(default: int = 6) -> int:
    budget = int(os.environ.get("REPRO_FUZZ_BUDGET", default * 50))
    return max(1, budget // 50)


def _fresh_value(rng: random.Random, dtype: DataType) -> Any:
    if dtype is DataType.INT:
        return rng.randint(0, 999)
    if dtype is DataType.FLOAT:
        return round(rng.uniform(0.0, 99.0), 2)
    if dtype is DataType.BOOL:
        return rng.random() < 0.5
    return f"d{rng.randint(0, 999)}"


def _random_values(rng: random.Random, instance: DatabaseInstance, name: str) -> tuple:
    """A schema-typed row: each column drawn from live values or freshly made."""
    relation = instance.relation(name)
    rows = list(relation.value_set())
    values = []
    for position, attribute in enumerate(relation.schema.attributes):
        if rows and rng.random() < 0.7:
            values.append(rng.choice(rows)[position])
        else:
            values.append(_fresh_value(rng, attribute.dtype))
    return tuple(values)


def _mutate_once(rng: random.Random, instance: DatabaseInstance, name: str) -> str:
    """Apply one random edit to ``name``; returns a human-readable log entry."""
    relation = instance.relation(name)
    tids = relation.tids()
    op = rng.choice(("insert", "delete", "update")) if tids else "insert"
    if op == "insert":
        values = _random_values(rng, instance, name)
        tid = relation.insert(values)
        return f"insert {tid} {values!r}"
    tid = rng.choice(tids)
    if op == "delete":
        values = relation.delete(tid)
        return f"delete {tid} {values!r}"
    values = _random_values(rng, instance, name)
    relation.update(tid, values)
    return f"update {tid} {values!r}"


def _run_trial(instance: DatabaseInstance, trial_seed: int) -> dict:
    """One warm-vs-cold fuzz trial; returns the warm session's stats."""
    rng = random.Random(trial_seed)
    fuzzer = QueryFuzzer(instance.schema, instance=instance)
    pool = list(fuzzer.queries(QUERY_POOL, start=trial_seed * QUERY_POOL))
    warm = EngineSession(instance)
    for fuzz_query in pool:
        warm.evaluate(fuzz_query.expression, fuzz_query.params)
    names = list(instance.relation_names)
    for round_number in range(ROUNDS):
        edits = [
            _mutate_once(rng, instance, rng.choice(names))
            for _ in range(EDITS_PER_ROUND)
        ]
        cold = EngineSession(instance)
        for fuzz_query in pool:
            patched = warm.evaluate(fuzz_query.expression, fuzz_query.params).rows
            scratch = cold.evaluate(fuzz_query.expression, fuzz_query.params).rows
            reference = frozenset(
                ReferenceEvaluator(instance, fuzz_query.params).rows(
                    fuzz_query.expression
                )
            )
            assert patched == scratch == reference, (
                f"delta maintenance diverged — reproduce with: "
                f"trial_seed={trial_seed} round={round_number} "
                f"{fuzz_query.repro()}\n"
                f"  edits this round: {edits}\n"
                f"  warm (patched): {len(patched)} rows\n"
                f"  cold:           {len(scratch)} rows\n"
                f"  reference:      {len(reference)} rows"
            )
    return warm.stats


@pytest.mark.parametrize("label", ["university", "beers"])
def test_differential_delta_fuzz(label):
    """Random edit streams leave warm sessions bit-identical to cold ones."""
    builders = {
        "university": (toy_university_instance, 17),
        "beers": (toy_beers_instance, 53),
    }
    builder, salt = builders[label]
    maintained = fallbacks = 0
    for trial in range(_trials()):
        seed = 1000 * trial + salt
        instance = perturb_instance(builder(), seed=seed)
        stats = _run_trial(instance, trial_seed=seed)
        maintained += stats["delta_maintained"] + stats["delta_patched"]
        fallbacks += stats["delta_fallback"]
    # The trials must actually exercise delta maintenance, not degenerate
    # into wholesale invalidation (which would make warm == cold trivially).
    assert maintained > 0
    assert fallbacks == 0


def test_repro_one_liner_replays_a_failure_scenario():
    """The seed printed on failure fully determines the edit stream."""
    first = perturb_instance(toy_university_instance(), seed=7)
    second = perturb_instance(toy_university_instance(), seed=7)
    rng_a, rng_b = random.Random(123), random.Random(123)
    for _ in range(10):
        name = rng_a.choice(list(first.relation_names))
        assert name == rng_b.choice(list(second.relation_names))
        assert _mutate_once(rng_a, first, name) == _mutate_once(rng_b, second, name)
    for name in first.relation_names:
        assert first.relation(name).value_set() == second.relation(name).value_set()


def test_log_overflow_falls_back_to_cold_evaluation():
    """A mutation burst past the log capacity degrades safely, not wrongly."""
    from repro.catalog.instance import MUTATION_LOG_CAPACITY

    instance = toy_university_instance()
    session = EngineSession(instance)
    fuzzer = QueryFuzzer(instance.schema, instance=instance)
    pool = list(fuzzer.queries(4))
    for fuzz_query in pool:
        session.evaluate(fuzz_query.expression, fuzz_query.params)
    student = instance.relation("Student")
    rng = random.Random(99)
    for _ in range(MUTATION_LOG_CAPACITY + 10):
        tid = student.insert(_random_values(rng, instance, "Student"))
        student.delete(tid)
    cold = EngineSession(instance)
    for fuzz_query in pool:
        assert (
            session.evaluate(fuzz_query.expression, fuzz_query.params).rows
            == cold.evaluate(fuzz_query.expression, fuzz_query.params).rows
        ), f"post-overflow divergence: {fuzz_query.repro()}"
    assert session.stats["delta_fallback"] >= 1
