"""Smoke tests for the experiment drivers (tiny scale, checking shapes not numbers)."""

import pytest

from repro.experiments import (
    ScaleProfile,
    complexity_experiment,
    dichotomy_experiment,
    differing_pairs,
    discovery_experiment,
    generate_report,
    parameterization_experiment,
    scaling_experiment,
    scp_vs_swp_experiment,
    solver_strategy_experiment,
    tpch_experiment,
    user_study_experiments,
)
from repro.datagen import university_instance

TINY = ScaleProfile(
    name="tiny",
    database_sizes=(120, 250),
    pairs_per_size=3,
    tpch_scale=0.04,
    naive_budgets=(1, 4),
    cohort_size=40,
)


class TestProfilesAndPairs:
    def test_named_profiles(self):
        assert ScaleProfile.by_name("quick").name == "quick"
        assert ScaleProfile.by_name("paper").database_sizes[-1] == 100000
        with pytest.raises(ValueError):
            ScaleProfile.by_name("huge")

    def test_differing_pairs_actually_differ(self):
        instance = university_instance(30, seed=3)
        pairs = differing_pairs(instance, limit=5, seed=3)
        assert 0 < len(pairs) <= 5
        from repro.ra import results_differ

        for pair in pairs:
            assert results_differ(pair.correct, pair.wrong, instance)

    def test_differing_pairs_spread_questions(self):
        instance = university_instance(60, seed=3)
        pairs = differing_pairs(instance, limit=6, seed=3)
        assert len({pair.question for pair in pairs}) >= 3


class TestDrivers:
    def test_table3_rows_monotone(self):
        result = discovery_experiment(TINY)
        discovered = result.column("wrong_queries_discovered")
        assert len(discovered) == 2
        assert discovered[0] <= discovered[1] + 2  # allow small noise, expect non-decreasing trend

    def test_table4_optsigma_not_slower_and_same_size(self):
        result = scp_vs_swp_experiment(TINY)
        basic, optsigma = result.rows
        assert optsigma["mean_runtime_s"] <= basic["mean_runtime_s"]
        assert optsigma["mean_counterexample_size"] == pytest.approx(
            basic["mean_counterexample_size"], abs=0.51
        )

    def test_figure3_rows_have_metrics(self):
        result = complexity_experiment(TINY)
        assert result.rows
        for row in result.rows:
            assert row["witness_size"] >= 1
            assert row["total_s"] >= row["solver_s"]

    def test_figure4_components(self):
        result = scaling_experiment(TINY)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["solver_opt_all_s"] >= row["solver_opt_s"] - 1e-6
            assert row["prov_all_s"] >= 0 and row["prov_sp_s"] >= 0

    def test_figure5_opt_no_larger_than_naive(self):
        result = solver_strategy_experiment(TINY)
        by_strategy = {row["strategy"]: row for row in result.rows}
        assert by_strategy["Opt"]["mean_witness_size"] <= by_strategy["Naive-1"]["mean_witness_size"]

    def test_dichotomy_rows(self):
        result = dichotomy_experiment(TINY)
        assert result.rows
        for row in result.rows:
            if "specialised_size" in row:
                assert row["specialised_size"] == row["optsigma_size"]

    def test_user_study_experiments(self):
        results = user_study_experiments(TINY)
        assert set(results) == {"figure8", "table5", "figure9", "figure10"}
        assert results["table5"].rows

    def test_report_generation(self):
        results = user_study_experiments(TINY)
        report = generate_report(results)
        assert "Table 5" in report and "| problem |" in report


@pytest.mark.slow
class TestTpchDrivers:
    def test_figure6_rows(self):
        result = tpch_experiment(TINY, solver_time_budget=5.0, solver_node_budget=5000)
        assert {row["query"] for row in result.rows} == {"Q4", "Q16", "Q18", "Q21", "Q21-S"}
        assert {row["algorithm"] for row in result.rows} == {"Agg-Basic", "Agg-Opt"}

    def test_figure7_parameterization_helps(self):
        result = parameterization_experiment(TINY, solver_time_budget=5.0)
        by_algorithm = {row["algorithm"]: row for row in result.rows}
        basic = by_algorithm["Agg-Basic"]["mean_counterexample_size"]
        param = by_algorithm["Agg-Param"]["mean_counterexample_size"]
        if basic is not None and param is not None:
            assert param <= basic
