"""Tests for the RA text DSL: lexer, parser and SQL rendering."""

import pytest

from repro.datagen import toy_university_instance, university_schema
from repro.errors import ParseError
from repro.parser import parse_predicate, parse_query, predicate_to_sql, to_sql, tokenize
from repro.ra import (
    Difference,
    GroupBy,
    Intersection,
    Join,
    NaturalJoin,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
    evaluate,
)

DB = university_schema()


class TestLexer:
    def test_keywords_and_blocks(self):
        tokens = tokenize("\\select_{a = 1} R")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "BLOCK", "IDENT"]
        assert tokens[1].value == "a = 1"

    def test_nested_blocks(self):
        tokens = tokenize("\\project_{a} (\\select_{x = '}'} R)")
        assert tokens[0].kind == "KEYWORD"
        # The brace inside the string literal must not close the block.
        assert tokens[1].value == "a"

    def test_string_and_number_literals(self):
        tokens = tokenize("x = 'CS' and y >= 3.5")
        values = [t.value for t in tokens]
        assert "CS" in values and "3.5" in values

    def test_dotted_identifiers(self):
        tokens = tokenize("s.name = r.name")
        assert tokens[0].value == "s.name"

    def test_unknown_keyword(self):
        with pytest.raises(ParseError):
            tokenize("\\frobnicate R")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("x = 'CS")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            tokenize("\\select_{a = 1 R")

    def test_comments_are_skipped(self):
        tokens = tokenize("R # this is a comment\n")
        assert len(tokens) == 1


class TestParser:
    def test_relation_reference(self):
        assert isinstance(parse_query("Student"), RelationRef)

    def test_unary_operators(self):
        query = parse_query("\\project_{name} \\select_{major = 'CS'} Student")
        assert isinstance(query, Projection)
        assert isinstance(query.child, Selection)

    def test_binary_operators_left_associative(self):
        query = parse_query("Student \\union Student \\diff Student")
        assert isinstance(query, Difference)
        assert isinstance(query.left, Union)

    def test_theta_vs_natural_join(self):
        theta = parse_query("Student \\join_{name = name} Registration")
        natural = parse_query("Student \\join Registration")
        assert isinstance(theta, Join)
        assert isinstance(natural, NaturalJoin)

    def test_cross_and_intersect(self):
        assert isinstance(parse_query("Student \\cross Registration"), Join)
        assert isinstance(parse_query("Student \\intersect Student"), Intersection)

    def test_rename_prefix_and_mapping(self):
        prefixed = parse_query("\\rename_{prefix: s} Student")
        mapped = parse_query("\\rename_{name -> who} Student")
        assert isinstance(prefixed, Rename) and prefixed.prefix == "s"
        assert isinstance(mapped, Rename) and mapped.attribute_mapping == (("name", "who"),)

    def test_aggregate(self):
        query = parse_query("\\aggr_{group: name; count(*) -> n, avg(grade) -> g} Registration")
        assert isinstance(query, GroupBy)
        assert query.group_by == ("name",)
        assert [spec.alias for spec in query.aggregates] == ["n", "g"]

    def test_aggregate_without_group(self):
        query = parse_query("\\aggr_{; count(*) -> n} Registration")
        assert isinstance(query, GroupBy)
        assert query.group_by == ()

    def test_projection_aliases(self):
        query = parse_query("\\project_{name -> student, major} Student")
        assert query.output_names() == ("student", "major")

    def test_parenthesised_expression(self):
        query = parse_query("(Student \\union Student) \\intersect Student")
        assert isinstance(query, Intersection)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("Student Student")

    def test_missing_block(self):
        with pytest.raises(ParseError):
            parse_query("\\select Student")

    def test_cross_with_block_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Student \\cross_{x = 1} Student")

    def test_unknown_aggregate_function(self):
        with pytest.raises(ParseError):
            parse_query("\\aggr_{group: name; median(grade) -> m} Registration")

    def test_parse_roundtrip_evaluates(self, example1_q1, example1_q2):
        instance = toy_university_instance()
        assert set(evaluate(example1_q1, instance).rows) == {("John", "ECON")}
        assert len(evaluate(example1_q2, instance)) == 3


class TestPredicateParser:
    def test_precedence_and_or_not(self):
        predicate = parse_predicate("a = 1 or b = 2 and not c = 3")
        # AND binds tighter than OR.
        from repro.ra.predicates import Or

        assert isinstance(predicate, Or)

    def test_parentheses(self):
        predicate = parse_predicate("(a = 1 or b = 2) and c = 3")
        from repro.ra.predicates import And

        assert isinstance(predicate, And)

    def test_comparison_operators(self):
        assert parse_predicate("a <> 3").op == "!="
        assert parse_predicate("a <= 3").op == "<="

    def test_parameters_and_booleans(self):
        predicate = parse_predicate("n >= @k and flag = true")
        assert predicate.referenced_params() == {"k"}

    def test_malformed(self):
        with pytest.raises(ParseError):
            parse_predicate("a = ")


class TestSqlWriter:
    def test_cte_per_operator(self, example1_q2):
        sql = to_sql(example1_q2, DB)
        assert sql.startswith("WITH")
        assert "JOIN" in sql and "SELECT DISTINCT" in sql

    def test_difference_renders_except(self, example1_q1):
        sql = to_sql(example1_q1, DB)
        assert "EXCEPT" in sql

    def test_group_by_rendering(self):
        query = parse_query("\\aggr_{group: name; count(*) -> n} Registration")
        sql = to_sql(query, DB)
        assert "GROUP BY name" in sql and "COUNT(*) AS n" in sql

    def test_base_relation_without_ctes(self):
        # Scans deduplicate: the storage layer allows duplicate value rows.
        assert to_sql(parse_query("Student"), DB) == "SELECT DISTINCT name, major FROM Student"

    def test_predicate_rendering(self):
        assert predicate_to_sql(parse_predicate("dept <> 'CS'")) == "dept <> 'CS'"

    def test_predicate_rendering_escapes_quotes(self):
        from repro.ra.predicates import Comparison, ColumnRef, Literal

        predicate = Comparison("=", ColumnRef("name"), Literal("O'Brien"))
        assert "O''Brien" in predicate_to_sql(predicate)

    def test_null_literal_renders_as_null(self):
        from repro.ra.predicates import Comparison, ColumnRef, Literal

        predicate = Comparison("=", ColumnRef("name"), Literal(None))
        rendered = predicate_to_sql(predicate)
        assert "NULL" in rendered
        assert "None" not in rendered and "''" not in rendered

    def test_dotted_and_reserved_identifiers_are_quoted(self):
        query = parse_query("\\project_{s.name -> name} \\rename_{prefix: s} Student")
        sql = to_sql(query, DB)
        assert '"s.name"' in sql

    def test_set_operands_use_explicit_column_lists(self, example1_q1):
        sql = to_sql(example1_q1, DB)
        assert "EXCEPT" in sql
        assert "SELECT *" not in sql

    def test_hoisted_equijoin_keys_are_null_safe(self, example1_q2):
        sql = to_sql(example1_q2, DB)
        assert " IS " in sql
