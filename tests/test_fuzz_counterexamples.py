"""Counterexample-mode fuzzing: every witness machine-verified.

Seeded wrong-query pairs (a generated reference plus a mutated submission,
see :class:`repro.workload.fuzz.CounterexampleFuzzer`) are solved by every
applicable algorithm from :data:`repro.core.finder.ALGORITHMS`; each returned
witness is verified by :func:`repro.core.verify.verify_counterexample` —
it must distinguish the queries on the witness sub-instance, be closed under
foreign keys (dangling references inadmissible), agree on the size metric
and, where the solver claimed ``optimal``, survive both the brute-force and
the Naive-M/Opt minimality oracles.

On failure the assertion message lists seeded DSL reproduction one-liners:
paste the seed into ``CounterexampleFuzzer(instance).pair(seed)`` to replay.

``REPRO_FUZZ_BUDGET`` scales the pair budget (default 220 wrong pairs across
the instance mix — the acceptance floor is 200); the ``slow``-marked extended
sweep only runs with ``REPRO_FUZZ_EXTENDED`` set.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen import toy_beers_instance, toy_university_instance
from repro.workload.fuzz import (
    CounterexampleFuzzer,
    applicable_algorithms,
    perturb_instance,
    run_counterexample_fuzz,
)

pytestmark = pytest.mark.fuzz


def _budget(default: int = 220) -> int:
    return int(os.environ.get("REPRO_FUZZ_BUDGET", default))


def _instances():
    return [
        ("university", toy_university_instance()),
        ("university-dirty", perturb_instance(toy_university_instance(), seed=42)),
        ("beers", toy_beers_instance()),
        ("beers-dirty", perturb_instance(toy_beers_instance(), seed=43)),
    ]


def _run(instance, pairs: int, *, start: int = 0) -> tuple[int, int, list]:
    outcomes = run_counterexample_fuzz(instance, pairs=pairs, start=start)
    witnesses = [o for o in outcomes if o.result is not None]
    failures = [o for o in outcomes if not o.ok]
    return len(outcomes), len(witnesses), failures


@pytest.mark.parametrize(
    "label,instance", _instances(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_counterexample_fuzz(label, instance):
    """Every witness any algorithm returns on seeded wrong pairs verifies clean."""
    pairs = max(1, _budget() // len(_instances()))
    trials, witnesses, failures = _run(instance, pairs)
    assert not failures, (
        f"{len(failures)} verification failure(s) on {label} — reproduce with:\n"
        + "\n".join(o.repro() for o in failures[:10])
    )
    # The mode must actually produce witnesses, not just skip everything.
    assert witnesses >= pairs, f"only {witnesses} witnesses from {trials} trials"


def test_budget_covers_the_acceptance_floor():
    """The default budget runs at least 200 wrong-query pairs overall."""
    assert _budget() >= 200 or "REPRO_FUZZ_BUDGET" in os.environ


def test_pair_generation_is_deterministic_and_reproducible():
    instance = toy_university_instance()
    first = CounterexampleFuzzer(instance)
    second = CounterexampleFuzzer(instance)
    produced = 0
    for seed in range(120):
        a, b = first.pair(seed), second.pair(seed)
        assert (a is None) == (b is None)
        if a is None:
            continue
        produced += 1
        assert (a.correct_dsl, a.mutant_dsl, a.mutation) == (
            b.correct_dsl,
            b.mutant_dsl,
            b.mutation,
        )
    assert produced > 10


def test_pairs_really_differ_and_are_schema_compatible():
    instance = toy_university_instance()
    fuzzer = CounterexampleFuzzer(instance)
    for pair in fuzzer.pairs(20):
        reference = fuzzer.session.evaluate(pair.correct, pair.params)
        mutant = fuzzer.session.evaluate(pair.mutant, pair.params)
        assert not reference.same_rows(mutant)
        assert pair.correct.output_schema(instance.schema).union_compatible(
            pair.mutant.output_schema(instance.schema)
        )


def test_algorithm_routing_covers_both_families():
    """The seeded mix exercises aggregate and SPJUD routing."""
    instance = toy_university_instance()
    fuzzer = CounterexampleFuzzer(instance)
    routed = set()
    for pair in fuzzer.pairs(60):
        routed.update(applicable_algorithms(pair.correct, pair.mutant))
    assert {"optsigma", "basic", "spjud-star"} <= routed
    assert "agg-opt" in routed or "agg-basic" in routed


@pytest.mark.slow
@pytest.mark.skipif(
    "REPRO_FUZZ_EXTENDED" not in os.environ,
    reason="extended counterexample fuzz only with REPRO_FUZZ_EXTENDED set",
)
@pytest.mark.parametrize(
    "label,instance", _instances(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_counterexample_fuzz_extended(label, instance):
    """A deeper sweep over a fresh seed range for nightly/extended runs."""
    pairs = max(100, _budget() // 2)
    _, _, failures = _run(instance, pairs, start=50_000)
    assert not failures, "\n".join(o.repro() for o in failures[:10])
